//! Consistency levels, request cost models, and degradation policy.
//!
//! The Cassandra-style trio: a request succeeds once `required(rf)`
//! replicas have answered, so the coordinator's *view* of replica
//! liveness — not ground truth — decides availability. That is the
//! bridge from the paper's flap storms to user-visible damage: a
//! convicted-but-alive replica stops counting toward the quorum.

use scalecheck_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How many replica acknowledgements a request waits for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Consistency {
    /// One replica suffices.
    One,
    /// A majority of the replication factor: `rf/2 + 1`.
    Quorum,
    /// Every replica.
    All,
}

impl Consistency {
    /// Acknowledgements required at replication factor `rf`.
    pub fn required(self, rf: usize) -> usize {
        match self {
            Consistency::One => 1,
            Consistency::Quorum => rf / 2 + 1,
            Consistency::All => rf,
        }
        .min(rf.max(1))
    }

    /// Stable lowercase name (table rows, histogram labels).
    pub fn name(self) -> &'static str {
        match self {
            Consistency::One => "one",
            Consistency::Quorum => "quorum",
            Consistency::All => "all",
        }
    }
}

/// Read or write — distinct service-time models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// A read: served from memtable/row cache, cheap at the replica.
    Read,
    /// A write: commit-log append plus memtable insert.
    Write,
}

impl OpKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }
}

/// Replica-side service times added on top of network RTTs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Service time a replica adds to a read.
    pub read_service: SimDuration,
    /// Service time a replica adds to a write.
    pub write_service: SimDuration,
    /// Parse/route work the coordinator burns on its own CPU before
    /// anything reaches the wire. Only the coupled datapath bills it.
    pub coord_service: SimDuration,
    /// Latency booked for a request that ultimately fails: the client's
    /// request timeout (Cassandra defaults to 2 s reads / 2 s writes).
    pub timeout: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_service: SimDuration::from_micros(350),
            write_service: SimDuration::from_micros(150),
            coord_service: SimDuration::from_micros(50),
            timeout: SimDuration::from_secs(2),
        }
    }
}

impl CostModel {
    /// Service time for one op kind.
    pub fn service(&self, kind: OpKind) -> SimDuration {
        match kind {
            OpKind::Read => self.read_service,
            OpKind::Write => self.write_service,
        }
    }
}

/// What a coordinator does when its view offers fewer live replicas
/// than the consistency level requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Degradation {
    /// Fail the request immediately at the client timeout.
    FailFast,
    /// Hinted-handoff-style degradation: retry with exponentially
    /// growing, capped backoff on the virtual clock. Writes that still
    /// reach at least one live replica succeed *degraded* (the hint
    /// rides the backoff); reads burn the full backoff ladder and then
    /// fail. Fully deterministic — the ladder is arithmetic, not
    /// scheduling.
    HintedRetry {
        /// Retry rungs attempted before giving up.
        max_retries: u32,
        /// First-rung backoff; rung `k` waits `backoff × 2^k`.
        backoff: SimDuration,
    },
}

impl Degradation {
    /// Total virtual time a request spends on the backoff ladder when
    /// it climbs `rungs` rungs (saturating).
    pub fn backoff_total(&self, rungs: u32) -> SimDuration {
        match *self {
            Degradation::FailFast => SimDuration::ZERO,
            Degradation::HintedRetry {
                max_retries,
                backoff,
            } => {
                let rungs = rungs.min(max_retries).min(20);
                // backoff × (2^rungs − 1): the sum of the ladder.
                backoff.saturating_mul((1u64 << rungs) - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_matches_cassandra_semantics() {
        assert_eq!(Consistency::One.required(3), 1);
        assert_eq!(Consistency::Quorum.required(3), 2);
        assert_eq!(Consistency::All.required(3), 3);
        assert_eq!(Consistency::Quorum.required(5), 3);
        // Degenerate rings never require more than they have.
        assert_eq!(Consistency::All.required(1), 1);
        assert_eq!(Consistency::Quorum.required(1), 1);
        assert_eq!(Consistency::One.required(0), 1);
    }

    #[test]
    fn backoff_ladder_is_exponential_and_capped() {
        let d = Degradation::HintedRetry {
            max_retries: 3,
            backoff: SimDuration::from_millis(100),
        };
        assert_eq!(d.backoff_total(0), SimDuration::ZERO);
        assert_eq!(d.backoff_total(1), SimDuration::from_millis(100));
        assert_eq!(d.backoff_total(2), SimDuration::from_millis(300));
        assert_eq!(d.backoff_total(3), SimDuration::from_millis(700));
        // Rungs beyond max_retries are clamped.
        assert_eq!(d.backoff_total(9), SimDuration::from_millis(700));
        assert_eq!(Degradation::FailFast.backoff_total(5), SimDuration::ZERO);
    }

    #[test]
    fn cost_model_distinguishes_kinds() {
        let c = CostModel::default();
        assert!(c.service(OpKind::Read) > c.service(OpKind::Write));
        assert!(c.timeout > c.service(OpKind::Read));
    }
}
