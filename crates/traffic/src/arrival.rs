//! Open-loop arrival processes on the virtual clock.
//!
//! Offered load is *open-loop*: users issue requests at their own rate
//! regardless of how the cluster is doing, which is exactly what makes
//! tail latency honest (a closed loop would throttle itself around the
//! very stall it should be measuring). The arithmetic is pure integers
//! — a `u128` milli-op accumulator carries sub-op remainders across
//! ticks — so a million-user cell offers *exactly*
//! `users × rate × seconds` operations with no float drift and no
//! per-user state.

use scalecheck_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

/// How per-tick batch sizes are drawn from the configured mean rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exactly the configured rate each tick (remainders carry over).
    Constant,
    /// Poisson-distributed batch sizes with the configured mean, drawn
    /// from the traffic RNG (Knuth for small means, a rounded normal
    /// approximation past 64 — both deterministic).
    Poisson,
}

/// The offered-load shape of one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Simulated user population. Scales the offered rate only — state
    /// stays O(1) no matter how large this is.
    pub users: u64,
    /// Per-user offered rate in milli-operations per second (1000 =
    /// one op/s per user).
    pub millirate_per_user: u64,
    /// Batch-size distribution.
    pub process: ArrivalProcess,
    /// Rate multiplier applied while the cluster is inside its rescale
    /// window (bootstrap/decommission phase ramp), in permille of the
    /// steady rate. 1000 = flat; 1500 models the reconnect stampede a
    /// topology change triggers.
    pub rescale_ramp_permille: u32,
    /// Batch tick interval on the virtual clock.
    pub tick: SimDuration,
}

impl ArrivalConfig {
    /// No offered load.
    pub const OFF: ArrivalConfig = ArrivalConfig {
        users: 0,
        millirate_per_user: 0,
        process: ArrivalProcess::Constant,
        rescale_ramp_permille: 1000,
        tick: SimDuration::from_secs(1),
    };

    /// Whether the datapath is off entirely. A population with a zero
    /// per-user rate is *not* off: the engine still ticks (armed, fully
    /// plumbed into the cluster) while offering nothing — the shape the
    /// zero-offered-load differential tests pin against traffic-off.
    pub fn is_off(&self) -> bool {
        self.users == 0
    }

    /// Cluster-wide offered rate in milli-ops per second.
    pub fn milliops_per_sec(&self) -> u128 {
        self.users as u128 * self.millirate_per_user as u128
    }
}

/// Integer arrival generator: one per run, O(1) state.
#[derive(Clone, Debug, Default)]
pub struct ArrivalGen {
    /// Sub-operation remainder in milli-op·nanoseconds.
    carry: u128,
}

/// Scale factor between milli-op·ns and whole operations:
/// 1000 milli-ops × 1e9 ns/s.
const MILLIOP_NS_PER_OP: u128 = 1_000 * 1_000_000_000;

impl ArrivalGen {
    /// Operations offered in one tick of `cfg.tick` at phase ramp
    /// `ramp_permille`, advancing the remainder carry. Constant process
    /// is exact; Poisson draws the batch size around the same mean.
    pub fn offered(&mut self, cfg: &ArrivalConfig, ramp_permille: u32, rng: &mut DetRng) -> u64 {
        let rate = cfg.milliops_per_sec() * ramp_permille as u128 / 1000;
        self.carry += rate * cfg.tick.as_nanos() as u128;
        let mean = (self.carry / MILLIOP_NS_PER_OP) as u64;
        self.carry %= MILLIOP_NS_PER_OP;
        match cfg.process {
            ArrivalProcess::Constant => mean,
            ArrivalProcess::Poisson => poisson(mean, rng),
        }
    }
}

/// One Poisson draw with the given mean. Knuth's product method up to
/// mean 64; beyond that the normal approximation `mean + √mean·z`
/// (rounded, clamped at zero) — at such means the relative error is
/// far below anything the log-bucketed histograms can resolve.
fn poisson(mean: u64, rng: &mut DetRng) -> u64 {
    if mean == 0 {
        return 0;
    }
    if mean <= 64 {
        let limit = (-(mean as f64)).exp();
        let mut product = 1.0f64;
        let mut count = 0u64;
        loop {
            product *= rng.gen_f64();
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }
    let z = rng.gen_normal();
    let drawn = mean as f64 + (mean as f64).sqrt() * z;
    if drawn <= 0.0 {
        0
    } else {
        drawn.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(users: u64, millirate: u64, process: ArrivalProcess) -> ArrivalConfig {
        ArrivalConfig {
            users,
            millirate_per_user: millirate,
            process,
            rescale_ramp_permille: 1000,
            tick: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn constant_rate_is_exact_over_many_ticks() {
        let c = cfg(1_000_000, 333, ArrivalProcess::Constant);
        let mut g = ArrivalGen::default();
        let mut rng = DetRng::new(1);
        let total: u64 = (0..100).map(|_| g.offered(&c, 1000, &mut rng)).sum();
        // 1e6 users × 0.333 op/s × 100 s = 33_300_000 ops exactly.
        assert_eq!(total, 33_300_000);
    }

    #[test]
    fn sub_op_rates_accumulate_instead_of_vanishing() {
        // 1 user at 1 milli-op/s: one op every 1000 s.
        let c = cfg(1, 1, ArrivalProcess::Constant);
        let mut g = ArrivalGen::default();
        let mut rng = DetRng::new(1);
        let total: u64 = (0..2_000).map(|_| g.offered(&c, 1000, &mut rng)).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn ramp_scales_the_rate() {
        let c = cfg(100, 1000, ArrivalProcess::Constant);
        let mut g = ArrivalGen::default();
        let mut rng = DetRng::new(1);
        assert_eq!(g.offered(&c, 1000, &mut rng), 100);
        assert_eq!(g.offered(&c, 1500, &mut rng), 150);
        assert_eq!(g.offered(&c, 0, &mut rng), 0);
    }

    #[test]
    fn poisson_is_deterministic_and_mean_tracking() {
        let c = cfg(1000, 1000, ArrivalProcess::Poisson);
        let draw_total = |seed: u64| -> u64 {
            let mut g = ArrivalGen::default();
            let mut rng = DetRng::new(seed);
            (0..200).map(|_| g.offered(&c, 1000, &mut rng)).sum()
        };
        assert_eq!(draw_total(7), draw_total(7), "same seed, same draws");
        let total = draw_total(7) as f64;
        let expect = 1000.0 * 200.0;
        assert!(
            (total - expect).abs() / expect < 0.05,
            "poisson total {total} should track mean {expect}"
        );
    }

    #[test]
    fn small_mean_poisson_uses_knuth_and_stays_sane() {
        let c = cfg(3, 1000, ArrivalProcess::Poisson);
        let mut g = ArrivalGen::default();
        let mut rng = DetRng::new(11);
        let total: u64 = (0..3000).map(|_| g.offered(&c, 1000, &mut rng)).sum();
        let expect = 3.0 * 3000.0;
        assert!(
            (total as f64 - expect).abs() / expect < 0.1,
            "knuth total {total} should track mean {expect}"
        );
    }

    #[test]
    fn off_config_offers_nothing() {
        assert!(ArrivalConfig::OFF.is_off());
        let mut g = ArrivalGen::default();
        let mut rng = DetRng::new(1);
        assert_eq!(g.offered(&ArrivalConfig::OFF, 1000, &mut rng), 0);
    }
}
