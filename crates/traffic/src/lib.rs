//! The client-request datapath: millions of virtual users over the
//! token ring, deterministic to the byte.
//!
//! The paper's opening symptom is user-facing — "many live nodes are
//! declared as dead, making some data not reachable by the users" —
//! but flap counts are an operator's view of that damage. Production
//! observes the same bug as a p99.9 latency cliff and error-budget
//! burn. This crate closes that gap: an **open-loop arrival process**
//! offers aggregated request batches on the virtual clock
//! ([`ArrivalConfig`]), each request routes through a coordinator to
//! its RF replicas and completes under a **consistency level**
//! ([`Consistency`]) using per-replica virtual-time RTTs plus
//! failure-detector liveness, and per-request latencies land in an
//! **SLO layer** ([`SloTarget`], [`slo::ErrorBudget`]) that renders the
//! run as percentiles and budget burn.
//!
//! Three contracts hold everything together:
//!
//! * **Coupled by default, observer on demand.** The open-loop datapath
//!   runs *coupled* ([`TrafficConfig::coupled`]): coordinator and
//!   replica service bill the per-node simulated CPUs and replica round
//!   trips ride the real per-link FIFO clocks and fault windows, so CPU
//!   starvation and network congestion show up in user-visible tails.
//!   The legacy client probe stays an uncoupled observer, and either
//!   way traffic never draws from the simulation's shared RNG streams —
//!   with traffic off (or coupled traffic offered zero load) the
//!   control plane is bit-identical.
//! * **O(requests), not O(clients).** A cell configured with a million
//!   users costs the same memory as one with fifty: arrivals aggregate
//!   into per-tick batches, each tick simulates at most
//!   [`TrafficConfig::sample_cap_per_tick`] representative requests,
//!   and offered load beyond the sample budget rides along as integer
//!   weights. [`TrafficState::tracked_bytes`] exposes the footprint so
//!   tests can pin it.
//! * **Byte determinism.** Same (config, plan, seed) → the same request
//!   log digest and the same histogram bytes at any sweep parallelism.
//!   All randomness flows through one private [`DetRng`] fork.
//!
//! [`DetRng`]: scalecheck_sim::DetRng

pub mod arrival;
pub mod consistency;
pub mod engine;
pub mod report;
pub mod slo;

pub use arrival::{ArrivalConfig, ArrivalProcess};
pub use consistency::{Consistency, CostModel, Degradation, OpKind};
pub use engine::{ClusterFabric, KeySkew, Phase, TrafficConfig, TrafficState};
pub use report::{RequestRecord, TrafficReport};
pub use slo::{ErrorBudget, SloSummary, SloTarget};
