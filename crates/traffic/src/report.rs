//! The serialized outcome of one run's traffic: per-phase histograms,
//! budget accounting, and a content-addressed request log.

use scalecheck_obs::LogHistogram;
use scalecheck_sim::TimeSeries;
use serde::{Deserialize, Serialize};

use crate::consistency::OpKind;
use crate::slo::{ErrorBudget, SloSummary, SloTarget};

/// What happened to one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Required acknowledgements arrived.
    Ok,
    /// Succeeded only via the degradation policy (hinted write).
    Degraded,
    /// Timed out / no path to the required replicas.
    Failed,
}

impl Outcome {
    fn code(self) -> u8 {
        match self {
            Outcome::Ok => 0,
            Outcome::Degraded => 1,
            Outcome::Failed => 2,
        }
    }
}

/// One simulated request sample (weight = offered requests it stands
/// for).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Virtual issue time (ns).
    pub at_ns: u64,
    /// Coordinator node index.
    pub coordinator: u32,
    /// Partition key token.
    pub key: u64,
    /// Read or write.
    pub kind: OpKind,
    /// How it ended.
    pub outcome: Outcome,
    /// End-to-end latency (ns).
    pub latency_ns: u64,
    /// Offered requests this sample represents.
    pub weight: u64,
}

/// One latency histogram cell: (phase, kind) with a readable label.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseHist {
    /// `"<phase>/<kind>"`, e.g. `"rescale/read"`.
    pub label: String,
    /// Latency distribution (ns), weighted.
    pub hist: LogHistogram,
}

/// Everything one run's traffic produced. Deterministic to the byte:
/// same (config, plan, seed) serializes identically at any `--jobs`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Whether any load was offered.
    pub enabled: bool,
    /// Whether requests ran *coupled* to the simulation (CPU billing +
    /// real data-plane messages) instead of the standalone latency
    /// model.
    pub coupled: bool,
    /// Weighted requests offered.
    pub attempted: u64,
    /// Weighted requests that failed outright.
    pub failed: u64,
    /// Weighted requests that succeeded only degraded.
    pub degraded: u64,
    /// Request samples actually simulated (the run costs O(this)).
    pub samples: u64,
    /// Weighted requests reissued after a client timeout (retry
    /// feedback into offered load).
    pub retried: u64,
    /// Weighted retries shed because the retry queue was at capacity
    /// (booked failed immediately).
    pub retry_shed: u64,
    /// Weighted retries still pending when the run ended.
    pub retry_in_flight: u64,
    /// Data-plane messages offered to the fabric.
    pub data_sent: u64,
    /// Data-plane messages the fabric dropped (partition, loss, fault
    /// window).
    pub data_dropped: u64,
    /// Latency histograms, one per (phase, kind), phase-major.
    pub hists: Vec<PhaseHist>,
    /// Cumulative weighted failures over virtual time.
    pub failure_series: TimeSeries,
    /// Error-budget accounting over the whole run.
    pub budget: ErrorBudget,
    /// The SLO target the budget was held to.
    pub target: SloTarget,
    /// FNV-1a-128 digest over every request record, in issue order.
    pub log_digest: String,
    /// The first few records verbatim (debugging; capped).
    pub log_sample: Vec<RequestRecord>,
    /// Peak tracked state footprint in bytes — independent of the
    /// configured user count (the O(requests) memory contract).
    pub state_peak_bytes: u64,
}

impl TrafficReport {
    /// All-phase latency histogram (merged).
    pub fn latency_hist(&self) -> LogHistogram {
        let mut all = LogHistogram::new();
        for ph in &self.hists {
            all.merge(&ph.hist);
        }
        all
    }

    /// The run condensed to its user-visible verdict inputs.
    pub fn slo_summary(&self) -> SloSummary {
        SloSummary::from_parts(&self.latency_hist(), &self.budget, &self.target)
    }

    /// Fraction of weighted requests that failed (0 when idle).
    pub fn unavailability(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.failed as f64 / self.attempted as f64
        }
    }
}

/// Streaming FNV-1a-128 over request records — the same constants the
/// sweep cache and witness digests use, so digests are comparable
/// across tools.
#[derive(Clone, Debug)]
pub struct LogDigest {
    h: u128,
}

impl Default for LogDigest {
    fn default() -> Self {
        LogDigest {
            h: 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d,
        }
    }
}

impl LogDigest {
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u128;
            self.h = self
                .h
                .wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
        }
    }

    /// Folds one record into the digest.
    pub fn push(&mut self, r: &RequestRecord) {
        self.bytes(&r.at_ns.to_le_bytes());
        self.bytes(&r.coordinator.to_le_bytes());
        self.bytes(&r.key.to_le_bytes());
        self.bytes(&[
            match r.kind {
                OpKind::Read => 0,
                OpKind::Write => 1,
            },
            r.outcome.code(),
        ]);
        self.bytes(&r.latency_ns.to_le_bytes());
        self.bytes(&r.weight.to_le_bytes());
    }

    /// The digest so far as 32 hex chars.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64) -> RequestRecord {
        RequestRecord {
            at_ns: 1_000,
            coordinator: 3,
            key,
            kind: OpKind::Read,
            outcome: Outcome::Ok,
            latency_ns: 2_000_000,
            weight: 10,
        }
    }

    #[test]
    fn digest_discriminates_and_reproduces() {
        let mut a = LogDigest::default();
        let mut b = LogDigest::default();
        a.push(&rec(1));
        b.push(&rec(1));
        assert_eq!(a.hex(), b.hex());
        b.push(&rec(2));
        assert_ne!(a.hex(), b.hex());
        let mut c = LogDigest::default();
        c.push(&rec(2));
        assert_ne!(a.hex(), c.hex(), "order and content both matter");
    }

    #[test]
    fn empty_report_is_benign() {
        let r = TrafficReport::default();
        assert_eq!(r.unavailability(), 0.0);
        assert_eq!(r.slo_summary().attempted, 0);
        assert_eq!(r.latency_hist().count, 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = TrafficReport {
            enabled: true,
            attempted: 100,
            failed: 3,
            ..Default::default()
        };
        r.log_sample.push(rec(9));
        r.hists.push(PhaseHist {
            label: "steady/read".into(),
            hist: LogHistogram::new(),
        });
        let json = serde_json::to_string(&r).expect("serialize");
        let back: TrafficReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, r);
    }
}
