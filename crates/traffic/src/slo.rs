//! Service-level objectives: latency targets, availability floors, and
//! the error-budget accountant.
//!
//! A request is **good** when it succeeds within the latency target;
//! everything else — failures and over-target successes — burns error
//! budget. The budget is the availability floor's complement: a 99.9 %
//! floor allows 1 bad request per thousand, and `burned_permille`
//! against `allowed_permille` is the verdict production pages on.

use scalecheck_obs::LogHistogram;
use scalecheck_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The objective one cell is held to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloTarget {
    /// Latency target: a good request completes within this.
    pub latency_target: SimDuration,
    /// Availability floor in permille (999 = 99.9 %).
    pub availability_floor_permille: u32,
}

impl Default for SloTarget {
    fn default() -> Self {
        SloTarget {
            latency_target: SimDuration::from_millis(100),
            availability_floor_permille: 999,
        }
    }
}

/// Weighted good/bad accounting against an [`SloTarget`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorBudget {
    /// Total requests accounted (weighted).
    pub total: u64,
    /// Requests that failed outright (weighted).
    pub failed: u64,
    /// Successes that exceeded the latency target (weighted).
    pub slow: u64,
}

impl ErrorBudget {
    /// Accounts `weight` requests that completed in `latency`;
    /// `ok` = false marks outright failures.
    pub fn account(&mut self, target: &SloTarget, ok: bool, latency: SimDuration, weight: u64) {
        self.total = self.total.saturating_add(weight);
        if !ok {
            self.failed = self.failed.saturating_add(weight);
        } else if latency > target.latency_target {
            self.slow = self.slow.saturating_add(weight);
        }
    }

    /// Bad requests (failed or slow), weighted.
    pub fn bad(&self) -> u64 {
        self.failed.saturating_add(self.slow)
    }

    /// Budget burned, in permille of total requests (0 when idle).
    pub fn burned_permille(&self) -> u32 {
        if self.total == 0 {
            return 0;
        }
        ((self.bad() as u128 * 1000 / self.total as u128) as u64).min(1000) as u32
    }

    /// Budget allowed by the floor, in permille.
    pub fn allowed_permille(target: &SloTarget) -> u32 {
        1000 - target.availability_floor_permille.min(1000)
    }

    /// Whether the burn exceeds the floor's allowance.
    pub fn breached(&self, target: &SloTarget) -> bool {
        self.total > 0 && self.burned_permille() > Self::allowed_permille(target)
    }
}

/// One cell's user-visible outcome, condensed for verdicts and tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSummary {
    /// Median request latency (ns, log-bucket upper bound).
    pub p50_ns: u64,
    /// 99th-percentile request latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile request latency (ns).
    pub p999_ns: u64,
    /// Whether the p99.9 estimate is saturated: it landed in the
    /// histogram bucket holding the largest recorded latency (typically
    /// the client timeout), so the tail beyond it is unresolved and the
    /// reported value is the observed max, not a within-bucket bound.
    pub tail_saturated: bool,
    /// Successful fraction in permille of weighted requests.
    pub availability_permille: u32,
    /// Error budget burned, in permille.
    pub budget_burned_permille: u32,
    /// Whether the burn breached the availability floor's allowance.
    pub budget_breached: bool,
    /// Weighted requests behind the summary (0 = traffic off).
    pub attempted: u64,
}

impl SloSummary {
    /// Condenses a latency histogram plus budget accounting.
    pub fn from_parts(hist: &LogHistogram, budget: &ErrorBudget, target: &SloTarget) -> Self {
        let availability = if budget.total == 0 {
            1000
        } else {
            ((budget.total - budget.failed) as u128 * 1000 / budget.total as u128) as u32
        };
        SloSummary {
            p50_ns: hist.quantile_permille(500),
            p99_ns: hist.quantile_permille(990),
            p999_ns: hist.quantile_permille(999),
            tail_saturated: hist.quantile_saturated(999),
            availability_permille: availability,
            budget_burned_permille: budget.burned_permille(),
            budget_breached: budget.breached(target),
            attempted: budget.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> SloTarget {
        SloTarget {
            latency_target: SimDuration::from_millis(10),
            availability_floor_permille: 990,
        }
    }

    #[test]
    fn budget_counts_failures_and_slow_successes() {
        let t = target();
        let mut b = ErrorBudget::default();
        b.account(&t, true, SimDuration::from_millis(1), 900);
        b.account(&t, true, SimDuration::from_millis(50), 50);
        b.account(&t, false, SimDuration::from_secs(2), 50);
        assert_eq!(b.total, 1000);
        assert_eq!(b.failed, 50);
        assert_eq!(b.slow, 50);
        assert_eq!(b.burned_permille(), 100);
        assert_eq!(ErrorBudget::allowed_permille(&t), 10);
        assert!(b.breached(&t));
    }

    #[test]
    fn healthy_traffic_stays_inside_budget() {
        let t = target();
        let mut b = ErrorBudget::default();
        for _ in 0..100 {
            b.account(&t, true, SimDuration::from_millis(2), 10);
        }
        assert_eq!(b.burned_permille(), 0);
        assert!(!b.breached(&t));
    }

    #[test]
    fn empty_budget_never_breaches() {
        assert!(!ErrorBudget::default().breached(&target()));
        assert_eq!(ErrorBudget::default().burned_permille(), 0);
    }

    #[test]
    fn summary_condenses_hist_and_budget() {
        let t = target();
        let mut h = LogHistogram::new();
        let mut b = ErrorBudget::default();
        for _ in 0..999 {
            h.record(1_000_000);
            b.account(&t, true, SimDuration::from_millis(1), 1);
        }
        h.record(8_000_000_000);
        b.account(&t, false, SimDuration::from_secs(8), 1);
        let s = SloSummary::from_parts(&h, &b, &t);
        assert!(s.p50_ns >= 1_000_000 && s.p50_ns < 2_100_000);
        assert!(s.p999_ns >= 1_000_000);
        assert!(s.p999_ns < s.p999_ns.max(h.max) + 1);
        assert_eq!(s.availability_permille, 999);
        assert_eq!(s.attempted, 1000);
    }
}
