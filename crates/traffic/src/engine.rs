//! The request engine: ticks batches of virtual-user requests through
//! coordinator routing, consistency levels, and the SLO accountant.
//!
//! The engine is a *passenger* on the simulation: each tick it reads
//! the cluster through the [`ClusterView`] trait — ring ownership,
//! failure-detector liveness, link FIFO residuals — and never writes
//! anything back. All of its randomness comes from one private
//! [`DetRng`] fork, so enabling traffic cannot perturb control-path
//! dynamics, and two runs of the same (config, plan, seed) produce the
//! same request log digest byte for byte.

use scalecheck_net::LatencyModel;
use scalecheck_obs::{metric, LogHistogram, Metric};
use scalecheck_sim::{DetRng, SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::arrival::{ArrivalConfig, ArrivalGen, ArrivalProcess};
use crate::consistency::{Consistency, CostModel, Degradation, OpKind};
use crate::report::{LogDigest, Outcome, PhaseHist, RequestRecord, TrafficReport};
use crate::slo::{ErrorBudget, SloTarget};

/// RNG stream id for the traffic fork — the same stream the legacy
/// client probe used, so runs keep their seeds comparable.
pub const TRAFFIC_RNG_STREAM: u64 = 999_983;

/// Where the run is relative to its rescale window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Before any topology change begins.
    Pre,
    /// Inside the bootstrap/decommission window (phase ramp applies).
    Rescale,
    /// After the last rescale action has fired.
    Post,
}

impl Phase {
    /// All phases, histogram-index order.
    pub const ALL: [Phase; 3] = [Phase::Pre, Phase::Rescale, Phase::Post];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pre => "pre",
            Phase::Rescale => "rescale",
            Phase::Post => "post",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Pre => 0,
            Phase::Rescale => 1,
            Phase::Post => 2,
        }
    }
}

/// What the traffic engine reads from the cluster each tick. The
/// cluster runner implements this over its live node table, ring
/// snapshot, and network; tests implement it over toy fixtures.
pub trait ClusterView {
    /// Total machines (live or not) that could coordinate requests.
    fn node_count(&self) -> usize;
    /// Whether node `i` is up and can act as a coordinator.
    fn is_live_coordinator(&self, i: usize) -> bool;
    /// Replication factor requests are written at.
    fn rf(&self) -> usize;
    /// Resolves `key`'s replica set *as `coordinator` sees the ring*,
    /// appending up to `rf` distinct node ids into `out`.
    fn replicas_of(&self, coordinator: usize, key: u64, out: &mut Vec<u32>);
    /// Whether `coordinator`'s failure detector considers `replica`
    /// alive. The coordinator's *view* — not ground truth — is what
    /// turns flap storms into user-visible damage.
    fn replica_alive(&self, coordinator: usize, replica: u32) -> bool;
    /// Residual FIFO delay on the `src → dst` link right now: how far
    /// the link clock is ahead of the virtual clock because of queued
    /// control traffic. Read-only.
    fn link_lag(&self, src: u32, dst: u32) -> SimDuration;
}

/// Full shape of one cell's offered load and objectives.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Arrival process (users, rates, ramp, tick).
    pub arrival: ArrivalConfig,
    /// Consistency level for reads.
    pub read_cl: Consistency,
    /// Consistency level for writes.
    pub write_cl: Consistency,
    /// Fraction of requests that are reads, in permille.
    pub read_permille: u32,
    /// Replica service times and the client timeout.
    pub cost: CostModel,
    /// What a coordinator does when the quorum is short.
    pub degradation: Degradation,
    /// The SLO the run is held to.
    pub slo: SloTarget,
    /// Max representative requests simulated per tick; offered load
    /// beyond it rides along as integer weights. This is the
    /// O(requests)-not-O(users) knob.
    pub sample_cap_per_tick: u32,
    /// Max request records kept verbatim in the report.
    pub log_sample_cap: u32,
}

impl TrafficConfig {
    /// No traffic at all.
    pub const OFF: TrafficConfig = TrafficConfig {
        arrival: ArrivalConfig::OFF,
        read_cl: Consistency::Quorum,
        write_cl: Consistency::Quorum,
        read_permille: 500,
        cost: CostModel {
            read_service: SimDuration::from_micros(350),
            write_service: SimDuration::from_micros(150),
            timeout: SimDuration::from_secs(2),
        },
        degradation: Degradation::FailFast,
        slo: SloTarget {
            latency_target: SimDuration::from_millis(100),
            availability_floor_permille: 999,
        },
        sample_cap_per_tick: 64,
        log_sample_cap: 32,
    };

    /// Whether any load will be offered.
    pub fn enabled(&self) -> bool {
        !self.arrival.is_off()
    }

    /// The legacy quorum-probe shape: `ops_per_sec` constant-rate
    /// writes at a fixed acknowledgement count, failing fast. Keeps old
    /// `ClientConfig { ops_per_sec, quorum }` scenarios running on the
    /// new datapath with equivalent semantics.
    pub fn from_legacy(ops_per_sec: u64, quorum: usize, rf: usize) -> TrafficConfig {
        let write_cl = if quorum <= 1 {
            Consistency::One
        } else if quorum >= rf.max(1) {
            Consistency::All
        } else {
            Consistency::Quorum
        };
        TrafficConfig {
            arrival: ArrivalConfig {
                users: ops_per_sec,
                millirate_per_user: 1000,
                process: ArrivalProcess::Constant,
                rescale_ramp_permille: 1000,
                tick: SimDuration::from_secs(1),
            },
            read_cl: write_cl,
            write_cl,
            read_permille: 0,
            ..TrafficConfig::OFF
        }
    }

    /// A production-shaped open loop: `users` virtual users at one
    /// op/s each, Poisson batches, a 1.5x reconnect stampede during the
    /// rescale window, quorum reads+writes, and hinted-handoff
    /// degradation. The config `tbl_slo` sweeps.
    pub fn open_loop(users: u64) -> TrafficConfig {
        TrafficConfig {
            arrival: ArrivalConfig {
                users,
                millirate_per_user: 1000,
                process: ArrivalProcess::Poisson,
                rescale_ramp_permille: 1500,
                tick: SimDuration::from_secs(1),
            },
            read_permille: 500,
            degradation: Degradation::HintedRetry {
                max_retries: 3,
                backoff: SimDuration::from_millis(50),
            },
            ..TrafficConfig::OFF
        }
    }
}

/// Live per-run traffic state: O(1) in the user population.
#[derive(Clone, Debug)]
pub struct TrafficState {
    cfg: TrafficConfig,
    latency: LatencyModel,
    rng: DetRng,
    arrivals: ArrivalGen,
    /// Phase-major (phase × kind) latency histograms.
    hists: Vec<LogHistogram>,
    budget: ErrorBudget,
    failure_series: TimeSeries,
    attempted: u64,
    failed: u64,
    degraded: u64,
    samples: u64,
    digest: LogDigest,
    log_sample: Vec<RequestRecord>,
    scratch_replicas: Vec<u32>,
    scratch_rtts: Vec<u64>,
    scratch_live: Vec<u32>,
    peak_bytes: u64,
}

impl TrafficState {
    /// Builds traffic state from the run's root RNG (forks the
    /// dedicated stream) and the scenario's link latency model.
    pub fn new(cfg: TrafficConfig, root_rng: &DetRng, latency: LatencyModel) -> TrafficState {
        let mut st = TrafficState {
            cfg,
            latency,
            rng: root_rng.fork(TRAFFIC_RNG_STREAM),
            arrivals: ArrivalGen::default(),
            hists: vec![LogHistogram::new(); Phase::ALL.len() * 2],
            budget: ErrorBudget::default(),
            failure_series: TimeSeries::new(),
            attempted: 0,
            failed: 0,
            degraded: 0,
            samples: 0,
            digest: LogDigest::default(),
            log_sample: Vec::new(),
            scratch_replicas: Vec::new(),
            scratch_rtts: Vec::new(),
            scratch_live: Vec::new(),
            peak_bytes: 0,
        };
        st.peak_bytes = st.tracked_bytes();
        st
    }

    /// The configuration this state runs under.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Weighted requests that have failed so far.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Weighted requests offered so far.
    pub fn attempted(&self) -> u64 {
        self.attempted
    }

    /// Current tracked footprint in bytes: struct plus every owned
    /// buffer's *capacity*. Tests pin this against the user count to
    /// enforce the O(requests) memory contract.
    pub fn tracked_bytes(&self) -> u64 {
        let hists: usize = self
            .hists
            .iter()
            .map(|h| h.buckets.capacity() * size_of::<u64>())
            .sum();
        (size_of::<Self>()
            + hists
            + self.log_sample.capacity() * size_of::<RequestRecord>()
            + self.failure_series.len() * size_of::<(SimTime, f64)>()
            + (self.scratch_replicas.capacity() + self.scratch_live.capacity()) * size_of::<u32>()
            + self.scratch_rtts.capacity() * size_of::<u64>()) as u64
    }

    /// Runs one arrival tick at virtual time `now`: draws the offered
    /// batch, simulates up to `sample_cap_per_tick` representative
    /// requests against the coordinator's view, and books the rest as
    /// weights. Read-only against `view`.
    pub fn tick<V: ClusterView>(&mut self, now: SimTime, phase: Phase, view: &V) {
        let ramp = if phase == Phase::Rescale {
            self.cfg.arrival.rescale_ramp_permille
        } else {
            1000
        };
        let offered = self
            .arrivals
            .offered(&self.cfg.arrival, ramp, &mut self.rng);
        if offered > 0 {
            self.scratch_live.clear();
            for i in 0..view.node_count() {
                if view.is_live_coordinator(i) {
                    self.scratch_live.push(i as u32);
                }
            }
            let n_samples = offered.min(self.cfg.sample_cap_per_tick.max(1) as u64);
            let base = offered / n_samples;
            let extra = offered % n_samples;
            for s in 0..n_samples {
                let weight = base + u64::from(s < extra);
                self.one_request(now, phase, view, weight);
            }
        }
        self.failure_series.push(now, self.failed as f64);
        self.peak_bytes = self.peak_bytes.max(self.tracked_bytes());
    }

    fn one_request<V: ClusterView>(&mut self, now: SimTime, phase: Phase, view: &V, weight: u64) {
        let key = self.rng.next_u64();
        let kind = if self.rng.gen_range(1000) < self.cfg.read_permille as u64 {
            OpKind::Read
        } else {
            OpKind::Write
        };
        let (outcome, latency, coordinator) = if self.scratch_live.is_empty() {
            // Nobody can even coordinate: every request times out.
            (Outcome::Failed, self.cfg.cost.timeout, u32::MAX)
        } else {
            let coord = self.scratch_live[self.rng.gen_index(self.scratch_live.len())];
            let (outcome, latency) = self.route(view, coord, key, kind);
            (outcome, latency, coord)
        };
        let latency_ns = latency.as_nanos();
        self.hists[phase.index() * 2 + (kind == OpKind::Write) as usize]
            .record_n(latency_ns, weight);
        self.budget
            .account(&self.cfg.slo, outcome != Outcome::Failed, latency, weight);
        self.attempted = self.attempted.saturating_add(weight);
        match outcome {
            Outcome::Failed => self.failed = self.failed.saturating_add(weight),
            Outcome::Degraded => self.degraded = self.degraded.saturating_add(weight),
            Outcome::Ok => {}
        }
        self.samples += 1;
        metric(Metric::RequestLatency, latency_ns);
        let record = RequestRecord {
            at_ns: now.as_nanos(),
            coordinator,
            key,
            kind,
            outcome,
            latency_ns,
            weight,
        };
        self.digest.push(&record);
        if self.log_sample.len() < self.cfg.log_sample_cap as usize {
            self.log_sample.push(record);
        }
    }

    /// Routes one request through `coord` to its replica set and
    /// completes it under the kind's consistency level.
    fn route<V: ClusterView>(
        &mut self,
        view: &V,
        coord: u32,
        key: u64,
        kind: OpKind,
    ) -> (Outcome, SimDuration) {
        let cl = match kind {
            OpKind::Read => self.cfg.read_cl,
            OpKind::Write => self.cfg.write_cl,
        };
        self.scratch_replicas.clear();
        view.replicas_of(coord as usize, key, &mut self.scratch_replicas);
        // A ring smaller than RF yields fewer replicas; the level can
        // only require what exists (quorum > RF is a config error,
        // rejected upstream at scenario-build time).
        let required = cl.required(self.scratch_replicas.len());
        self.scratch_rtts.clear();
        let mut live = 0usize;
        let mut worst_live = 0u64;
        for i in 0..self.scratch_replicas.len() {
            let replica = self.scratch_replicas[i];
            // Round trip: two one-way latency draws plus whatever the
            // control plane has queued on both directions of the link.
            // The coordinator replying to itself skips the network.
            let rtt = if replica == coord {
                0
            } else {
                (self.latency.sample(&mut self.rng)
                    + self.latency.sample(&mut self.rng)
                    + view.link_lag(coord, replica)
                    + view.link_lag(replica, coord))
                .as_nanos()
            };
            metric(Metric::ReplicaRtt, rtt);
            if view.replica_alive(coord as usize, replica) {
                self.scratch_rtts.push(rtt);
                live += 1;
                worst_live = worst_live.max(rtt);
            }
        }
        let service = self.cfg.cost.service(kind);
        if live >= required && required > 0 {
            // Wait for the k-th fastest live acknowledgement.
            self.scratch_rtts.sort_unstable();
            let kth = self.scratch_rtts[required - 1];
            return (Outcome::Ok, service + SimDuration::from_nanos(kth));
        }
        // Quorum short in this coordinator's view: degrade or fail.
        let deficit = (required.saturating_sub(live)).min(u32::MAX as usize) as u32;
        let backoff = self.cfg.degradation.backoff_total(deficit);
        match self.cfg.degradation {
            Degradation::FailFast => (Outcome::Failed, self.cfg.cost.timeout),
            Degradation::HintedRetry { .. } => {
                if kind == OpKind::Write && live > 0 {
                    // The write lands on the live replicas and the rest
                    // ride hints; the client sees the backoff ladder.
                    (
                        Outcome::Degraded,
                        service + SimDuration::from_nanos(worst_live) + backoff,
                    )
                } else {
                    // Reads cannot be hinted: burn the ladder and fail.
                    (Outcome::Failed, self.cfg.cost.timeout + backoff)
                }
            }
        }
    }

    /// Freezes the run's traffic into its serialized report.
    pub fn report(&self) -> TrafficReport {
        let mut hists = Vec::with_capacity(self.hists.len());
        for (pi, phase) in Phase::ALL.iter().enumerate() {
            for (ki, kind) in [OpKind::Read, OpKind::Write].iter().enumerate() {
                hists.push(PhaseHist {
                    label: format!("{}/{}", phase.name(), kind.name()),
                    hist: self.hists[pi * 2 + ki].clone(),
                });
            }
        }
        TrafficReport {
            enabled: self.cfg.enabled(),
            attempted: self.attempted,
            failed: self.failed,
            degraded: self.degraded,
            samples: self.samples,
            hists,
            failure_series: self.failure_series.clone(),
            budget: self.budget.clone(),
            target: self.cfg.slo,
            log_digest: self.digest.hex(),
            log_sample: self.log_sample.clone(),
            state_peak_bytes: self.peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy cluster: `n` nodes on a mod ring at RF 3, with an
    /// explicit down-set and a per-link lag.
    struct ToyView {
        n: usize,
        down: Vec<u32>,
        lag: SimDuration,
    }

    impl ToyView {
        fn healthy(n: usize) -> ToyView {
            ToyView {
                n,
                down: Vec::new(),
                lag: SimDuration::ZERO,
            }
        }
    }

    impl ClusterView for ToyView {
        fn node_count(&self) -> usize {
            self.n
        }
        fn is_live_coordinator(&self, i: usize) -> bool {
            !self.down.contains(&(i as u32))
        }
        fn rf(&self) -> usize {
            3
        }
        fn replicas_of(&self, _coordinator: usize, key: u64, out: &mut Vec<u32>) {
            let first = (key % self.n as u64) as usize;
            for k in 0..3.min(self.n) {
                out.push(((first + k) % self.n) as u32);
            }
        }
        fn replica_alive(&self, _coordinator: usize, replica: u32) -> bool {
            !self.down.contains(&replica)
        }
        fn link_lag(&self, _src: u32, _dst: u32) -> SimDuration {
            self.lag
        }
    }

    fn run(cfg: TrafficConfig, view: &ToyView, ticks: u64) -> TrafficReport {
        let root = DetRng::new(42);
        let mut st = TrafficState::new(cfg, &root, LatencyModel::lan());
        for t in 0..ticks {
            st.tick(SimTime::from_secs(t + 1), Phase::Pre, view);
        }
        st.report()
    }

    #[test]
    fn healthy_cluster_serves_everything() {
        let view = ToyView::healthy(8);
        let r = run(TrafficConfig::open_loop(1000), &view, 20);
        assert!(r.enabled);
        assert_eq!(r.failed, 0);
        assert_eq!(r.degraded, 0);
        assert!(r.attempted > 15_000, "attempted {}", r.attempted);
        assert!(r.samples <= 20 * 64);
        let s = r.slo_summary();
        assert_eq!(s.availability_permille, 1000);
        assert!(!s.budget_breached);
        // Quorum read = service + ~2nd-fastest lan RTT: low ms.
        assert!(s.p99_ns < 20_000_000, "p99 {}", s.p99_ns);
    }

    #[test]
    fn dead_quorum_burns_budget_and_inflates_the_tail() {
        // 2 of 3 replicas of every key down: quorum unreachable.
        let view = ToyView {
            n: 3,
            down: vec![1, 2],
            lag: SimDuration::ZERO,
        };
        let r = run(TrafficConfig::open_loop(1000), &view, 20);
        assert!(r.failed + r.degraded > 0);
        let s = r.slo_summary();
        assert!(s.budget_breached, "burn {}", s.budget_burned_permille);
        // The tail hits the timeout/backoff cliff.
        assert!(s.p999_ns >= 50_000_000, "p999 {}", s.p999_ns);
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let view = ToyView::healthy(16);
        let a = run(TrafficConfig::open_loop(50_000), &view, 30);
        let b = run(TrafficConfig::open_loop(50_000), &view, 30);
        assert_eq!(a.log_digest, b.log_digest);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn state_is_o1_in_the_user_population() {
        let view = ToyView::healthy(8);
        let root = DetRng::new(7);
        let mut small =
            TrafficState::new(TrafficConfig::open_loop(1_000), &root, LatencyModel::lan());
        let mut huge = TrafficState::new(
            TrafficConfig::open_loop(1_000_000),
            &root,
            LatencyModel::lan(),
        );
        for t in 0..50 {
            small.tick(SimTime::from_secs(t + 1), Phase::Rescale, &view);
            huge.tick(SimTime::from_secs(t + 1), Phase::Rescale, &view);
        }
        assert!(huge.attempted() > 900 * small.attempted());
        assert_eq!(
            small.tracked_bytes(),
            huge.tracked_bytes(),
            "a 1000x user population must not change the tracked footprint"
        );
    }

    #[test]
    fn link_lag_feeds_request_latency() {
        let calm = ToyView::healthy(8);
        let jammed = ToyView {
            n: 8,
            down: Vec::new(),
            lag: SimDuration::from_millis(40),
        };
        let a = run(TrafficConfig::open_loop(1000), &calm, 10);
        let b = run(TrafficConfig::open_loop(1000), &jammed, 10);
        // 40 ms of FIFO residual each way dominates the LAN RTT.
        assert!(
            b.slo_summary().p50_ns > a.slo_summary().p50_ns + 50_000_000,
            "lagged p50 {} vs calm p50 {}",
            b.slo_summary().p50_ns,
            a.slo_summary().p50_ns
        );
    }

    #[test]
    fn legacy_shape_maps_quorum_and_rate() {
        let t = TrafficConfig::from_legacy(50, 2, 3);
        assert!(t.enabled());
        assert_eq!(t.write_cl, Consistency::Quorum);
        assert_eq!(t.read_permille, 0);
        assert_eq!(t.arrival.milliops_per_sec(), 50_000);
        assert_eq!(
            TrafficConfig::from_legacy(10, 3, 3).write_cl,
            Consistency::All
        );
        assert_eq!(
            TrafficConfig::from_legacy(10, 1, 3).write_cl,
            Consistency::One
        );
        assert!(!TrafficConfig::from_legacy(0, 2, 3).enabled());
    }

    #[test]
    fn no_live_coordinator_fails_the_whole_batch() {
        let view = ToyView {
            n: 4,
            down: vec![0, 1, 2, 3],
            lag: SimDuration::ZERO,
        };
        let r = run(TrafficConfig::open_loop(100), &view, 5);
        assert!(r.attempted > 0);
        assert_eq!(r.failed, r.attempted);
        assert_eq!(r.slo_summary().availability_permille, 0);
    }
}
