//! The request engine: ticks batches of virtual-user requests through
//! coordinator routing, consistency levels, and the SLO accountant.
//!
//! In **coupled** mode (the default for the open-loop datapath) the
//! engine is a *tenant* of the simulation, not a passenger: coordinator
//! and replica service are billed on the per-node simulated CPUs
//! through [`ClusterFabric::bill_service`], and replica round trips are
//! real data-plane messages through [`ClusterFabric::send_data`] —
//! per-link FIFO clocks, partitions, and fault windows included. A
//! starved calc stage or a jammed link inflates user-visible p99.9 the
//! same way it inflates the control plane, which is the whole point:
//! the SLO layer must see the paper's CPU-starvation bugs, not a
//! standalone latency model.
//!
//! The legacy client probe stays **uncoupled** (`coupled = false`): it
//! samples the latency model read-only so existing scenarios keep their
//! control-plane dynamics bit-identical.
//!
//! All engine randomness comes from one private [`DetRng`] fork, so
//! two runs of the same (config, plan, seed) produce the same request
//! log digest byte for byte — and a coupled datapath offered zero load
//! never touches the fabric at all, leaving the run bit-identical to
//! traffic-off.

use std::collections::VecDeque;

use scalecheck_net::LatencyModel;
use scalecheck_obs::{metric, LogHistogram, Metric};
use scalecheck_sim::{DetRng, SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::arrival::{ArrivalConfig, ArrivalGen, ArrivalProcess};
use crate::consistency::{Consistency, CostModel, Degradation, OpKind};
use crate::report::{LogDigest, Outcome, PhaseHist, RequestRecord, TrafficReport};
use crate::slo::{ErrorBudget, SloTarget};

/// RNG stream id for the traffic fork — the same stream the legacy
/// client probe used, so runs keep their seeds comparable.
pub const TRAFFIC_RNG_STREAM: u64 = 999_983;

/// Where the run is relative to its rescale window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Before any topology change begins.
    Pre,
    /// Inside the bootstrap/decommission window (phase ramp applies).
    Rescale,
    /// After the last rescale action has fired.
    Post,
}

impl Phase {
    /// All phases, histogram-index order.
    pub const ALL: [Phase; 3] = [Phase::Pre, Phase::Rescale, Phase::Post];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pre => "pre",
            Phase::Rescale => "rescale",
            Phase::Post => "post",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Pre => 0,
            Phase::Rescale => 1,
            Phase::Post => 2,
        }
    }
}

/// What the traffic engine needs from the cluster each tick. The first
/// five methods are read-only topology/liveness lookups; the last two
/// are the coupling points where request work lands on the shared
/// simulated resources. The cluster runner implements this over its
/// live node table, machine park, and network; tests implement it over
/// toy fixtures.
pub trait ClusterFabric {
    /// Total machines (live or not) that could coordinate requests.
    fn node_count(&self) -> usize;
    /// Whether node `i` is up and can act as a coordinator.
    fn is_live_coordinator(&self, i: usize) -> bool;
    /// Replication factor requests are written at.
    fn rf(&self) -> usize;
    /// Resolves `key`'s replica set *as `coordinator` sees the ring*,
    /// appending up to `rf` distinct node ids into `out`.
    fn replicas_of(&mut self, coordinator: usize, key: u64, out: &mut Vec<u32>);
    /// Whether `coordinator`'s failure detector considers `replica`
    /// alive. The coordinator's *view* — not ground truth — is what
    /// turns flap storms into user-visible damage.
    fn replica_alive(&self, coordinator: usize, replica: u32) -> bool;
    /// Bills `demand` of request service on `node`'s simulated CPU
    /// starting no earlier than `at`, returning the completion time.
    /// Queue delay behind control-plane work (gossip pumps, ring
    /// recalculation) is how CPU starvation reaches request tails.
    fn bill_service(&mut self, node: u32, at: SimTime, demand: SimDuration) -> SimTime;
    /// Offers one data-plane message on the real fabric at `at`:
    /// `Some(deliver_at)` on acceptance (FIFO behind everything already
    /// queued on the link), `None` when a partition or fault window
    /// drops it.
    fn send_data(&mut self, at: SimTime, src: u32, dst: u32, rng: &mut DetRng) -> Option<SimTime>;
}

/// Per-key popularity distribution of the offered load.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeySkew {
    /// Every key equally likely (the old behavior).
    Uniform,
    /// Zipf-distributed ranks over a bounded keyspace, hashed onto the
    /// token ring — hot ranks own *fixed* token ranges, so a rebalance
    /// window that moves a hot range hits a disproportionate share of
    /// the offered load.
    Zipfian {
        /// Zipf exponent in permille (990 ≈ the YCSB default 0.99).
        theta_permille: u32,
        /// Number of distinct keys ranks are drawn over.
        keyspace: u64,
    },
}

/// Full shape of one cell's offered load and objectives.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Arrival process (users, rates, ramp, tick).
    pub arrival: ArrivalConfig,
    /// Consistency level for reads.
    pub read_cl: Consistency,
    /// Consistency level for writes.
    pub write_cl: Consistency,
    /// Fraction of requests that are reads, in permille.
    pub read_permille: u32,
    /// Replica service times and the client timeout.
    pub cost: CostModel,
    /// What a coordinator does when the quorum is short.
    pub degradation: Degradation,
    /// The SLO the run is held to.
    pub slo: SloTarget,
    /// Max representative requests simulated per tick; offered load
    /// beyond it rides along as integer weights. This is the
    /// O(requests)-not-O(users) knob.
    pub sample_cap_per_tick: u32,
    /// Max request records kept verbatim in the report.
    pub log_sample_cap: u32,
    /// Couple requests to the real simulation (CPU billing + data-plane
    /// messages) instead of sampling the standalone latency model.
    pub coupled: bool,
    /// Client-side retries after a timeout: the request re-arrives (at
    /// `retry_backoff` after the timeout fires) and is re-executed
    /// against the then-current cluster, feeding timed-out work back
    /// into offered load. 0 disables the feedback loop.
    pub client_retries: u32,
    /// Client-side delay between observing a timeout and reissuing.
    pub retry_backoff: SimDuration,
    /// Per-key popularity of the offered load.
    pub key_skew: KeySkew,
}

impl TrafficConfig {
    /// No traffic at all.
    pub const OFF: TrafficConfig = TrafficConfig {
        arrival: ArrivalConfig::OFF,
        read_cl: Consistency::Quorum,
        write_cl: Consistency::Quorum,
        read_permille: 500,
        cost: CostModel {
            read_service: SimDuration::from_micros(350),
            write_service: SimDuration::from_micros(150),
            coord_service: SimDuration::from_micros(50),
            timeout: SimDuration::from_secs(2),
        },
        degradation: Degradation::FailFast,
        slo: SloTarget {
            latency_target: SimDuration::from_millis(100),
            availability_floor_permille: 999,
        },
        sample_cap_per_tick: 64,
        log_sample_cap: 32,
        coupled: false,
        client_retries: 0,
        retry_backoff: SimDuration::from_millis(100),
        key_skew: KeySkew::Uniform,
    };

    /// Whether any load will be offered.
    pub fn enabled(&self) -> bool {
        !self.arrival.is_off()
    }

    /// The legacy quorum-probe shape: `ops_per_sec` constant-rate
    /// writes at a fixed acknowledgement count, failing fast. Keeps old
    /// `ClientConfig { ops_per_sec, quorum }` scenarios running on the
    /// new datapath with equivalent semantics — *uncoupled*, so probe
    /// scenarios keep their control-plane dynamics bit-identical.
    pub fn from_legacy(ops_per_sec: u64, quorum: usize, rf: usize) -> TrafficConfig {
        let write_cl = if quorum <= 1 {
            Consistency::One
        } else if quorum >= rf.max(1) {
            Consistency::All
        } else {
            Consistency::Quorum
        };
        TrafficConfig {
            arrival: ArrivalConfig {
                users: ops_per_sec,
                millirate_per_user: 1000,
                process: ArrivalProcess::Constant,
                rescale_ramp_permille: 1000,
                tick: SimDuration::from_secs(1),
            },
            read_cl: write_cl,
            write_cl,
            read_permille: 0,
            ..TrafficConfig::OFF
        }
    }

    /// A production-shaped open loop: `users` virtual users at one
    /// op/s each, Poisson batches, a 1.5x reconnect stampede during the
    /// rescale window, quorum reads+writes with YCSB-style Zipfian key
    /// popularity, hinted-handoff degradation, and capped client
    /// retries — all *coupled* to the real simulation. The config
    /// `tbl_slo` sweeps.
    pub fn open_loop(users: u64) -> TrafficConfig {
        TrafficConfig {
            arrival: ArrivalConfig {
                users,
                millirate_per_user: 1000,
                process: ArrivalProcess::Poisson,
                rescale_ramp_permille: 1500,
                tick: SimDuration::from_secs(1),
            },
            read_permille: 500,
            degradation: Degradation::HintedRetry {
                max_retries: 3,
                backoff: SimDuration::from_millis(50),
            },
            coupled: true,
            client_retries: 2,
            key_skew: KeySkew::Zipfian {
                theta_permille: 990,
                keyspace: 1 << 16,
            },
            ..TrafficConfig::OFF
        }
    }
}

/// A timed-out request waiting to re-arrive (client retry feedback).
#[derive(Clone, Copy, Debug)]
struct RetryEntry {
    /// Virtual time the client reissues, in ns.
    due_ns: u64,
    key: u64,
    kind: OpKind,
    weight: u64,
    /// Attempt number of the reissue (first retry = 1).
    attempt: u32,
    /// Client-visible time already burned on earlier attempts, in ns.
    elapsed_ns: u64,
    /// Phase of the *original* arrival — the outcome is booked there.
    phase: Phase,
}

/// How one routed attempt ended.
enum Routed {
    /// Completed (ok, degraded, or fail-fast) after this much latency.
    Done(Outcome, SimDuration),
    /// The k-th acknowledgement never reached the coordinator within
    /// the client timeout: eligible for a client retry.
    TimedOut,
}

/// Live per-run traffic state: O(1) in the user population.
#[derive(Clone, Debug)]
pub struct TrafficState {
    cfg: TrafficConfig,
    latency: LatencyModel,
    rng: DetRng,
    arrivals: ArrivalGen,
    /// Phase-major (phase × kind) latency histograms.
    hists: Vec<LogHistogram>,
    budget: ErrorBudget,
    failure_series: TimeSeries,
    attempted: u64,
    failed: u64,
    degraded: u64,
    samples: u64,
    /// Weighted requests reissued after a timeout.
    retried: u64,
    /// Weighted retries dropped because the retry queue was full (a
    /// retry storm saturating the client pool) — booked failed.
    retry_shed: u64,
    /// Data-plane messages offered / dropped by the fabric.
    data_sent: u64,
    data_dropped: u64,
    retry_queue: VecDeque<RetryEntry>,
    digest: LogDigest,
    log_sample: Vec<RequestRecord>,
    scratch_replicas: Vec<u32>,
    scratch_rtts: Vec<u64>,
    scratch_live: Vec<u32>,
    peak_bytes: u64,
}

/// SplitMix64: hashes a Zipf rank onto the token ring so each rank
/// owns a fixed pseudorandom token (and therefore a fixed replica set).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TrafficState {
    /// Builds traffic state from the run's root RNG (forks the
    /// dedicated stream) and the scenario's link latency model (used
    /// only by uncoupled probes).
    pub fn new(cfg: TrafficConfig, root_rng: &DetRng, latency: LatencyModel) -> TrafficState {
        let mut st = TrafficState {
            cfg,
            latency,
            rng: root_rng.fork(TRAFFIC_RNG_STREAM),
            arrivals: ArrivalGen::default(),
            hists: vec![LogHistogram::new(); Phase::ALL.len() * 2],
            budget: ErrorBudget::default(),
            failure_series: TimeSeries::new(),
            attempted: 0,
            failed: 0,
            degraded: 0,
            samples: 0,
            retried: 0,
            retry_shed: 0,
            data_sent: 0,
            data_dropped: 0,
            retry_queue: VecDeque::new(),
            digest: LogDigest::default(),
            log_sample: Vec::new(),
            scratch_replicas: Vec::new(),
            scratch_rtts: Vec::new(),
            scratch_live: Vec::new(),
            peak_bytes: 0,
        };
        st.peak_bytes = st.tracked_bytes();
        st
    }

    /// The configuration this state runs under.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Weighted requests that have failed so far.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Weighted requests offered so far.
    pub fn attempted(&self) -> u64 {
        self.attempted
    }

    /// Max pending retries tracked before further timeouts are shed
    /// (booked failed immediately). Proportional to the sample cap so
    /// memory stays O(requests), never O(users).
    fn retry_cap(&self) -> usize {
        self.cfg.sample_cap_per_tick.max(1) as usize * 8
    }

    /// Current tracked footprint in bytes: struct plus every owned
    /// buffer's *capacity*. Tests pin this against the user count to
    /// enforce the O(requests) memory contract.
    pub fn tracked_bytes(&self) -> u64 {
        let hists: usize = self
            .hists
            .iter()
            .map(|h| h.buckets.capacity() * size_of::<u64>())
            .sum();
        (size_of::<Self>()
            + hists
            + self.log_sample.capacity() * size_of::<RequestRecord>()
            + self.retry_queue.capacity() * size_of::<RetryEntry>()
            + self.failure_series.len() * size_of::<(SimTime, f64)>()
            + (self.scratch_replicas.capacity() + self.scratch_live.capacity()) * size_of::<u32>()
            + self.scratch_rtts.capacity() * size_of::<u64>()) as u64
    }

    /// Runs one arrival tick at virtual time `now`: reissues due client
    /// retries, draws the offered batch, simulates up to
    /// `sample_cap_per_tick` representative requests against the
    /// cluster, and books the rest as weights. In coupled mode every
    /// simulated request bills real CPU and link time; with zero
    /// offered load and no pending retries the fabric is never touched.
    pub fn tick<F: ClusterFabric>(&mut self, now: SimTime, phase: Phase, fabric: &mut F) {
        // Timed-out requests whose backoff has expired re-enter the
        // offered load and run against the *current* cluster state.
        while let Some(front) = self.retry_queue.front().copied() {
            if front.due_ns > now.as_nanos() {
                break;
            }
            self.retry_queue.pop_front();
            self.refresh_live(fabric);
            self.dispatch(
                now,
                front.phase,
                fabric,
                front.key,
                front.kind,
                front.weight,
                front.attempt,
                front.elapsed_ns,
            );
        }
        let ramp = if phase == Phase::Rescale {
            self.cfg.arrival.rescale_ramp_permille
        } else {
            1000
        };
        let offered = self
            .arrivals
            .offered(&self.cfg.arrival, ramp, &mut self.rng);
        if offered > 0 {
            self.refresh_live(fabric);
            let n_samples = offered.min(self.cfg.sample_cap_per_tick.max(1) as u64);
            let base = offered / n_samples;
            let extra = offered % n_samples;
            for s in 0..n_samples {
                let weight = base + u64::from(s < extra);
                self.attempted = self.attempted.saturating_add(weight);
                let key = self.sample_key();
                let kind = if self.rng.gen_range(1000) < self.cfg.read_permille as u64 {
                    OpKind::Read
                } else {
                    OpKind::Write
                };
                self.dispatch(now, phase, fabric, key, kind, weight, 0, 0);
            }
        }
        self.failure_series.push(now, self.failed as f64);
        self.peak_bytes = self.peak_bytes.max(self.tracked_bytes());
    }

    /// Rebuilds the live-coordinator scratch list.
    fn refresh_live<F: ClusterFabric>(&mut self, fabric: &mut F) {
        self.scratch_live.clear();
        for i in 0..fabric.node_count() {
            if fabric.is_live_coordinator(i) {
                self.scratch_live.push(i as u32);
            }
        }
    }

    /// Draws the next request key under the configured skew.
    fn sample_key(&mut self) -> u64 {
        match self.cfg.key_skew {
            KeySkew::Uniform => self.rng.next_u64(),
            KeySkew::Zipfian {
                theta_permille,
                keyspace,
            } => {
                // Inverse-CDF draw from the continuous Zipf(θ)
                // approximation over ranks 1..=keyspace, then hash the
                // rank to its fixed token.
                let n = keyspace.max(2);
                let theta = (theta_permille as f64 / 1000.0).clamp(0.0, 4.0);
                let u = self.rng.gen_f64();
                let rank = if (theta - 1.0).abs() < 1e-6 {
                    (n as f64).powf(u)
                } else {
                    let a = 1.0 - theta;
                    (((n as f64).powf(a) - 1.0) * u + 1.0).powf(1.0 / a)
                };
                splitmix64((rank.floor() as u64).clamp(1, n))
            }
        }
    }

    /// Executes one (possibly retried) request and settles it: books a
    /// completed outcome, or parks a timeout on the retry queue.
    #[allow(clippy::too_many_arguments)]
    fn dispatch<F: ClusterFabric>(
        &mut self,
        now: SimTime,
        phase: Phase,
        fabric: &mut F,
        key: u64,
        kind: OpKind,
        weight: u64,
        attempt: u32,
        elapsed_ns: u64,
    ) {
        let prior = SimDuration::from_nanos(elapsed_ns);
        if self.scratch_live.is_empty() {
            // Nobody can even coordinate: the connection times out.
            self.book(
                now,
                phase,
                u32::MAX,
                key,
                kind,
                Outcome::Failed,
                prior + self.cfg.cost.timeout,
                weight,
            );
            return;
        }
        let coord = self.scratch_live[self.rng.gen_index(self.scratch_live.len())];
        let routed = if self.cfg.coupled {
            self.route_coupled(fabric, now, coord, key, kind)
        } else {
            self.route_sampled(fabric, coord, key, kind)
        };
        match routed {
            Routed::Done(outcome, latency) => {
                self.book(
                    now,
                    phase,
                    coord,
                    key,
                    kind,
                    outcome,
                    prior + latency,
                    weight,
                );
            }
            Routed::TimedOut => {
                let spent = self.cfg.cost.timeout + self.cfg.retry_backoff;
                if attempt < self.cfg.client_retries && self.retry_queue.len() < self.retry_cap() {
                    self.retried = self.retried.saturating_add(weight);
                    self.retry_queue.push_back(RetryEntry {
                        due_ns: (now + spent).as_nanos(),
                        key,
                        kind,
                        weight,
                        attempt: attempt + 1,
                        elapsed_ns: elapsed_ns + spent.as_nanos(),
                        phase,
                    });
                } else {
                    if attempt < self.cfg.client_retries {
                        self.retry_shed = self.retry_shed.saturating_add(weight);
                    }
                    self.book(
                        now,
                        phase,
                        coord,
                        key,
                        kind,
                        Outcome::Failed,
                        prior + self.cfg.cost.timeout,
                        weight,
                    );
                }
            }
        }
    }

    /// Routes one request through the *real* simulation: coordinator
    /// service on its (possibly starved) CPU, a data-plane message per
    /// live replica, replica service on the replica's CPU, and the
    /// response message back — completion is the k-th fastest
    /// acknowledgement actually received.
    fn route_coupled<F: ClusterFabric>(
        &mut self,
        fabric: &mut F,
        now: SimTime,
        coord: u32,
        key: u64,
        kind: OpKind,
    ) -> Routed {
        let cl = match kind {
            OpKind::Read => self.cfg.read_cl,
            OpKind::Write => self.cfg.write_cl,
        };
        self.scratch_replicas.clear();
        fabric.replicas_of(coord as usize, key, &mut self.scratch_replicas);
        let required = cl.required(self.scratch_replicas.len());
        if required == 0 {
            return Routed::Done(Outcome::Failed, self.cfg.cost.timeout);
        }
        // Parse/route work on the coordinator happens before anything
        // hits the wire; a starved coordinator delays every replica.
        let issue_at = fabric.bill_service(coord, now, self.cfg.cost.coord_service);
        let service = self.cfg.cost.service(kind);
        self.scratch_rtts.clear();
        let mut live = 0usize;
        for i in 0..self.scratch_replicas.len() {
            let replica = self.scratch_replicas[i];
            // The coordinator only contacts replicas its own failure
            // detector considers alive; convicted replicas get hints,
            // not RPCs.
            if !fabric.replica_alive(coord as usize, replica) {
                continue;
            }
            live += 1;
            let ack_at = if replica == coord {
                // Local replica: service on the same CPU, no network.
                Some(fabric.bill_service(coord, issue_at, service))
            } else {
                self.data_sent += 1;
                match fabric.send_data(issue_at, coord, replica, &mut self.rng) {
                    None => {
                        self.data_dropped += 1;
                        None
                    }
                    Some(arrived) => {
                        let served = fabric.bill_service(replica, arrived, service);
                        self.data_sent += 1;
                        match fabric.send_data(served, replica, coord, &mut self.rng) {
                            None => {
                                self.data_dropped += 1;
                                None
                            }
                            Some(back) => Some(back),
                        }
                    }
                }
            };
            if let Some(at) = ack_at {
                let rtt = at.since(now).as_nanos();
                metric(Metric::ReplicaRtt, rtt);
                self.scratch_rtts.push(rtt);
            }
        }
        if live >= required {
            if self.scratch_rtts.len() >= required {
                self.scratch_rtts.sort_unstable();
                let kth = self.scratch_rtts[required - 1];
                if SimDuration::from_nanos(kth) <= self.cfg.cost.timeout {
                    return Routed::Done(Outcome::Ok, SimDuration::from_nanos(kth));
                }
            }
            // Enough live replicas, but the k-th acknowledgement was
            // dropped or came back past the deadline: client timeout.
            return Routed::TimedOut;
        }
        // Quorum short in this coordinator's view: degrade or fail.
        let deficit = (required.saturating_sub(live)).min(u32::MAX as usize) as u32;
        let backoff = self.cfg.degradation.backoff_total(deficit);
        match self.cfg.degradation {
            Degradation::FailFast => Routed::Done(Outcome::Failed, self.cfg.cost.timeout),
            Degradation::HintedRetry { .. } => {
                if kind == OpKind::Write && !self.scratch_rtts.is_empty() {
                    // The write lands on the replicas that acked and
                    // the rest ride hints; the client sees the slowest
                    // ack plus the backoff ladder.
                    let worst = *self.scratch_rtts.iter().max().expect("non-empty");
                    Routed::Done(Outcome::Degraded, SimDuration::from_nanos(worst) + backoff)
                } else if kind == OpKind::Write && live > 0 {
                    // Live replicas existed but every RPC was dropped.
                    Routed::TimedOut
                } else {
                    // Reads cannot be hinted: burn the ladder and fail.
                    Routed::Done(Outcome::Failed, self.cfg.cost.timeout + backoff)
                }
            }
        }
    }

    /// The uncoupled legacy probe: replica RTTs sampled from the
    /// standalone latency model, read-only against the cluster. Kept
    /// for `ClientConfig` compatibility — probe scenarios must leave
    /// control-plane dynamics bit-identical.
    fn route_sampled<F: ClusterFabric>(
        &mut self,
        fabric: &mut F,
        coord: u32,
        key: u64,
        kind: OpKind,
    ) -> Routed {
        let cl = match kind {
            OpKind::Read => self.cfg.read_cl,
            OpKind::Write => self.cfg.write_cl,
        };
        self.scratch_replicas.clear();
        fabric.replicas_of(coord as usize, key, &mut self.scratch_replicas);
        // A ring smaller than RF yields fewer replicas; the level can
        // only require what exists (quorum > RF is a config error,
        // rejected upstream at scenario-build time).
        let required = cl.required(self.scratch_replicas.len());
        self.scratch_rtts.clear();
        let mut live = 0usize;
        let mut worst_live = 0u64;
        for i in 0..self.scratch_replicas.len() {
            let replica = self.scratch_replicas[i];
            // Round trip: two one-way latency draws. The coordinator
            // replying to itself skips the network.
            let rtt = if replica == coord {
                0
            } else {
                (self.latency.sample(&mut self.rng) + self.latency.sample(&mut self.rng)).as_nanos()
            };
            metric(Metric::ReplicaRtt, rtt);
            if fabric.replica_alive(coord as usize, replica) {
                self.scratch_rtts.push(rtt);
                live += 1;
                worst_live = worst_live.max(rtt);
            }
        }
        let service = self.cfg.cost.service(kind);
        if live >= required && required > 0 {
            // Wait for the k-th fastest live acknowledgement.
            self.scratch_rtts.sort_unstable();
            let kth = self.scratch_rtts[required - 1];
            return Routed::Done(Outcome::Ok, service + SimDuration::from_nanos(kth));
        }
        // Quorum short in this coordinator's view: degrade or fail.
        let deficit = (required.saturating_sub(live)).min(u32::MAX as usize) as u32;
        let backoff = self.cfg.degradation.backoff_total(deficit);
        match self.cfg.degradation {
            Degradation::FailFast => Routed::Done(Outcome::Failed, self.cfg.cost.timeout),
            Degradation::HintedRetry { .. } => {
                if kind == OpKind::Write && live > 0 {
                    // The write lands on the live replicas and the rest
                    // ride hints; the client sees the backoff ladder.
                    Routed::Done(
                        Outcome::Degraded,
                        service + SimDuration::from_nanos(worst_live) + backoff,
                    )
                } else {
                    // Reads cannot be hinted: burn the ladder and fail.
                    Routed::Done(Outcome::Failed, self.cfg.cost.timeout + backoff)
                }
            }
        }
    }

    /// Books one settled request into histograms, budget, digest, and
    /// the sampled log.
    #[allow(clippy::too_many_arguments)]
    fn book(
        &mut self,
        now: SimTime,
        phase: Phase,
        coordinator: u32,
        key: u64,
        kind: OpKind,
        outcome: Outcome,
        latency: SimDuration,
        weight: u64,
    ) {
        let latency_ns = latency.as_nanos();
        self.hists[phase.index() * 2 + (kind == OpKind::Write) as usize]
            .record_n(latency_ns, weight);
        self.budget
            .account(&self.cfg.slo, outcome != Outcome::Failed, latency, weight);
        match outcome {
            Outcome::Failed => self.failed = self.failed.saturating_add(weight),
            Outcome::Degraded => self.degraded = self.degraded.saturating_add(weight),
            Outcome::Ok => {}
        }
        self.samples += 1;
        metric(Metric::RequestLatency, latency_ns);
        let record = RequestRecord {
            at_ns: now.as_nanos(),
            coordinator,
            key,
            kind,
            outcome,
            latency_ns,
            weight,
        };
        self.digest.push(&record);
        if self.log_sample.len() < self.cfg.log_sample_cap as usize {
            self.log_sample.push(record);
        }
    }

    /// Freezes the run's traffic into its serialized report.
    pub fn report(&self) -> TrafficReport {
        let mut hists = Vec::with_capacity(self.hists.len());
        for (pi, phase) in Phase::ALL.iter().enumerate() {
            for (ki, kind) in [OpKind::Read, OpKind::Write].iter().enumerate() {
                hists.push(PhaseHist {
                    label: format!("{}/{}", phase.name(), kind.name()),
                    hist: self.hists[pi * 2 + ki].clone(),
                });
            }
        }
        TrafficReport {
            enabled: self.cfg.enabled(),
            coupled: self.cfg.coupled,
            attempted: self.attempted,
            failed: self.failed,
            degraded: self.degraded,
            samples: self.samples,
            retried: self.retried,
            retry_shed: self.retry_shed,
            retry_in_flight: self.retry_queue.iter().map(|r| r.weight).sum(),
            data_sent: self.data_sent,
            data_dropped: self.data_dropped,
            hists,
            failure_series: self.failure_series.clone(),
            budget: self.budget.clone(),
            target: self.cfg.slo,
            log_digest: self.digest.hex(),
            log_sample: self.log_sample.clone(),
            state_peak_bytes: self.peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy cluster: `n` nodes on a mod ring at RF 3, each with a
    /// single-core in-order CPU and constant-latency links. Tracks
    /// every nanosecond billed so tests can assert the engine touched
    /// (or did not touch) the fabric.
    struct ToyFabric {
        n: usize,
        down: Vec<u32>,
        /// Next free time of each node's single core.
        cpu_free: Vec<SimTime>,
        /// Per-node service-time multiplier (a starved CPU ≫ 1).
        cpu_slow: Vec<u32>,
        latency: SimDuration,
        /// When true every remote data message is dropped.
        drop_all: bool,
        /// Total CPU ns billed across all nodes.
        billed: u64,
        /// Data messages offered.
        offered_msgs: u64,
    }

    impl ToyFabric {
        fn healthy(n: usize) -> ToyFabric {
            ToyFabric {
                n,
                down: Vec::new(),
                cpu_free: vec![SimTime::ZERO; n],
                cpu_slow: vec![1; n],
                latency: SimDuration::from_micros(500),
                drop_all: false,
                billed: 0,
                offered_msgs: 0,
            }
        }
    }

    impl ClusterFabric for ToyFabric {
        fn node_count(&self) -> usize {
            self.n
        }
        fn is_live_coordinator(&self, i: usize) -> bool {
            !self.down.contains(&(i as u32))
        }
        fn rf(&self) -> usize {
            3
        }
        fn replicas_of(&mut self, _coordinator: usize, key: u64, out: &mut Vec<u32>) {
            let first = (key % self.n as u64) as usize;
            for k in 0..3.min(self.n) {
                out.push(((first + k) % self.n) as u32);
            }
        }
        fn replica_alive(&self, _coordinator: usize, replica: u32) -> bool {
            !self.down.contains(&replica)
        }
        fn bill_service(&mut self, node: u32, at: SimTime, demand: SimDuration) -> SimTime {
            let demand = demand.saturating_mul(self.cpu_slow[node as usize] as u64);
            let start = self.cpu_free[node as usize].max(at);
            let finish = start + demand;
            self.cpu_free[node as usize] = finish;
            self.billed += demand.as_nanos();
            finish
        }
        fn send_data(
            &mut self,
            at: SimTime,
            _src: u32,
            _dst: u32,
            _rng: &mut DetRng,
        ) -> Option<SimTime> {
            self.offered_msgs += 1;
            if self.drop_all {
                None
            } else {
                Some(at + self.latency)
            }
        }
    }

    fn run_on(cfg: TrafficConfig, fabric: &mut ToyFabric, ticks: u64) -> TrafficReport {
        let root = DetRng::new(42);
        let mut st = TrafficState::new(cfg, &root, LatencyModel::lan());
        for t in 0..ticks {
            st.tick(SimTime::from_secs(t + 1), Phase::Pre, fabric);
        }
        st.report()
    }

    fn run(cfg: TrafficConfig, mut fabric: ToyFabric, ticks: u64) -> TrafficReport {
        run_on(cfg, &mut fabric, ticks)
    }

    #[test]
    fn healthy_cluster_serves_everything() {
        let r = run(TrafficConfig::open_loop(1000), ToyFabric::healthy(8), 20);
        assert!(r.enabled);
        assert!(r.coupled);
        assert_eq!(r.failed, 0);
        assert_eq!(r.degraded, 0);
        assert!(r.attempted > 15_000, "attempted {}", r.attempted);
        assert!(r.samples <= 20 * 64);
        assert!(r.data_sent > 0, "remote replicas need real messages");
        assert_eq!(r.data_dropped, 0);
        let s = r.slo_summary();
        assert_eq!(s.availability_permille, 1000);
        assert!(!s.budget_breached);
        // Quorum read = coord+replica service + ~2nd-fastest RTT, plus
        // intra-tick queueing (a tick's whole batch is dispatched at
        // the same instant): tens of ms, far below the 100 ms target.
        assert!(s.p99_ns < 80_000_000, "p99 {}", s.p99_ns);
    }

    #[test]
    fn dead_quorum_burns_budget_and_inflates_the_tail() {
        // 2 of 3 replicas of every key down: quorum unreachable.
        let mut fabric = ToyFabric::healthy(3);
        fabric.down = vec![1, 2];
        let r = run(TrafficConfig::open_loop(1000), fabric, 20);
        assert!(r.failed + r.degraded > 0);
        let s = r.slo_summary();
        assert!(s.budget_breached, "burn {}", s.budget_burned_permille);
        // The tail hits the timeout/backoff cliff.
        assert!(s.p999_ns >= 50_000_000, "p999 {}", s.p999_ns);
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let a = run(TrafficConfig::open_loop(50_000), ToyFabric::healthy(16), 30);
        let b = run(TrafficConfig::open_loop(50_000), ToyFabric::healthy(16), 30);
        assert_eq!(a.log_digest, b.log_digest);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn state_is_o1_in_the_user_population() {
        let root = DetRng::new(7);
        let mut fab_small = ToyFabric::healthy(8);
        let mut fab_huge = ToyFabric::healthy(8);
        let mut small =
            TrafficState::new(TrafficConfig::open_loop(1_000), &root, LatencyModel::lan());
        let mut huge = TrafficState::new(
            TrafficConfig::open_loop(1_000_000),
            &root,
            LatencyModel::lan(),
        );
        for t in 0..50 {
            small.tick(SimTime::from_secs(t + 1), Phase::Rescale, &mut fab_small);
            huge.tick(SimTime::from_secs(t + 1), Phase::Rescale, &mut fab_huge);
        }
        assert!(huge.attempted() > 900 * small.attempted());
        assert_eq!(
            small.tracked_bytes(),
            huge.tracked_bytes(),
            "a 1000x user population must not change the tracked footprint"
        );
    }

    #[test]
    fn starved_cpus_inflate_request_latency() {
        // The same cluster, but every CPU serves 200x slower — the
        // coupled engine must see the starvation in its tails, exactly
        // what the old standalone latency model was blind to.
        let calm = run(TrafficConfig::open_loop(1000), ToyFabric::healthy(8), 10);
        let mut starved_fab = ToyFabric::healthy(8);
        starved_fab.cpu_slow = vec![200; 8];
        let starved = run(TrafficConfig::open_loop(1000), starved_fab, 10);
        let (a, b) = (calm.slo_summary(), starved.slo_summary());
        assert!(
            b.p50_ns > a.p50_ns + 10_000_000,
            "starved p50 {} vs calm p50 {}",
            b.p50_ns,
            a.p50_ns
        );
    }

    #[test]
    fn dropped_links_time_out_and_retries_feed_back() {
        // Every remote message dropped: only requests whose coordinator
        // happens to be a replica can self-ack, and ONE still needs
        // nothing more — use quorum so every remote quorum times out.
        let mut fabric = ToyFabric::healthy(8);
        fabric.drop_all = true;
        let mut cfg = TrafficConfig::open_loop(100);
        cfg.client_retries = 2;
        let r = run_on(cfg, &mut fabric, 40);
        assert!(r.failed > 0, "quorums cannot complete");
        assert!(r.retried > 0, "timeouts must re-arrive as retries");
        assert!(r.data_dropped > 0);
        // A request that burns all its retries carries the elapsed time
        // of every attempt: ≥ 2 × (timeout + backoff) + timeout.
        let s = r.slo_summary();
        assert!(
            s.p999_ns >= 2 * 2_100_000_000 + 2_000_000_000,
            "p999 {} must include retry round trips",
            s.p999_ns
        );
        assert!(s.tail_saturated, "tail is timeout-limited");
    }

    #[test]
    fn zero_offered_load_never_touches_the_fabric() {
        let mut cfg = TrafficConfig::open_loop(1000);
        cfg.arrival.millirate_per_user = 0;
        assert!(cfg.enabled(), "armed but silent");
        let mut fabric = ToyFabric::healthy(8);
        let r = run_on(cfg, &mut fabric, 50);
        assert_eq!(r.attempted, 0);
        assert_eq!(fabric.billed, 0, "no CPU billed");
        assert_eq!(fabric.offered_msgs, 0, "no messages offered");
    }

    #[test]
    fn zipfian_skew_concentrates_traffic_on_hot_keys() {
        let root = DetRng::new(5);
        let mut zipf = TrafficState::new(
            TrafficConfig {
                key_skew: KeySkew::Zipfian {
                    theta_permille: 990,
                    keyspace: 1024,
                },
                ..TrafficConfig::open_loop(1000)
            },
            &root,
            LatencyModel::lan(),
        );
        let mut uniform =
            TrafficState::new(TrafficConfig::open_loop(1000), &root, LatencyModel::lan());
        uniform.cfg.key_skew = KeySkew::Uniform;
        let top_share = |st: &mut TrafficState| -> usize {
            let mut counts = std::collections::BTreeMap::new();
            for _ in 0..10_000 {
                *counts.entry(st.sample_key()).or_insert(0usize) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        let hot = top_share(&mut zipf);
        let flat = top_share(&mut uniform);
        // Zipf θ≈0.99 over 1024 keys puts ~10% of draws on rank 1; a
        // uniform u64 draw collides essentially never.
        assert!(hot > 500, "hot key saw {hot} of 10k draws");
        assert!(flat < 10, "uniform keys must not concentrate: {flat}");
        // The hot rank maps to one fixed key (stable replica set).
        let k1 = splitmix64(1);
        assert_eq!(splitmix64(1), k1);
    }

    #[test]
    fn legacy_shape_maps_quorum_and_rate() {
        let t = TrafficConfig::from_legacy(50, 2, 3);
        assert!(t.enabled());
        assert!(!t.coupled, "the legacy probe must stay an observer");
        assert_eq!(t.client_retries, 0);
        assert_eq!(t.key_skew, KeySkew::Uniform);
        assert_eq!(t.write_cl, Consistency::Quorum);
        assert_eq!(t.read_permille, 0);
        assert_eq!(t.arrival.milliops_per_sec(), 50_000);
        assert_eq!(
            TrafficConfig::from_legacy(10, 3, 3).write_cl,
            Consistency::All
        );
        assert_eq!(
            TrafficConfig::from_legacy(10, 1, 3).write_cl,
            Consistency::One
        );
        assert!(!TrafficConfig::from_legacy(0, 2, 3).enabled());
        assert!(TrafficConfig::open_loop(10).coupled);
    }

    #[test]
    fn uncoupled_probe_reads_but_never_writes_the_fabric() {
        let mut fabric = ToyFabric::healthy(8);
        let r = run_on(TrafficConfig::from_legacy(50, 2, 3), &mut fabric, 20);
        assert!(r.attempted > 0);
        assert!(!r.coupled);
        assert_eq!(fabric.billed, 0, "observer must not bill CPU");
        assert_eq!(fabric.offered_msgs, 0, "observer must not send");
        assert_eq!(r.data_sent, 0);
    }

    #[test]
    fn no_live_coordinator_fails_the_whole_batch() {
        let mut fabric = ToyFabric::healthy(4);
        fabric.down = vec![0, 1, 2, 3];
        let r = run(TrafficConfig::open_loop(100), fabric, 5);
        assert!(r.attempted > 0);
        assert_eq!(r.failed, r.attempted);
        assert_eq!(r.slo_summary().availability_permille, 0);
    }
}
