//! The PIL-safe / offending function finder (Figure 2, step b).
//!
//! Given a [`Program`], the analysis computes for every function:
//!
//! * its asymptotic **degree** (interprocedural: loops over `@scaledep`
//!   collections compose across call chains, as in C6127 where "O(N³)
//!   loops span 1000+ LOC across 9 functions");
//! * the **path conditions** (if-else predicates) required to reach each
//!   expensive term, so developers know which workload exercises it
//!   (C6127's last O(N²) loop runs only when bootstrapping from scratch);
//! * its **PIL-safety**: memoizable (no clock/RNG reads) and free of
//!   side effects (sends, disk I/O, locks).
//!
//! Functions that are scale-superlinear (`scale_order >= threshold`,
//! default 2) are **offending**; offending ∧ PIL-safe functions form the
//! instrumentation plan (step c), and offending-but-unsafe functions are
//! reported as warnings the developer must restructure.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::complexity::Degree;
use crate::ir::{Program, Stmt};

/// Why a function is not PIL-safe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum EffectReason {
    /// Sends network messages.
    SendsMessages,
    /// Performs disk I/O.
    DiskIo,
    /// Acquires or releases locks (blocking).
    Locking,
    /// Reads the clock or RNG (output not memoizable).
    Nondeterminism,
    /// Participates in recursion (degree under-approximated).
    Recursive,
}

/// One maximal cost term of a function, with what it takes to reach it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contribution {
    /// The growth term.
    pub degree: Degree,
    /// Branch predicates that must hold (prefixed `!` when the else arm
    /// is required).
    pub conditions: BTreeSet<String>,
    /// Call chain from the analyzed function down to the loop nest
    /// (empty when the loops are local).
    pub chain: Vec<String>,
}

/// Per-function analysis result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FuncReport {
    /// Function name.
    pub name: String,
    /// Upper-bound degree across all paths.
    pub degree: Degree,
    /// Whether the function may take the PIL.
    pub pil_safe: bool,
    /// Reasons it is unsafe (empty when `pil_safe`).
    pub effects: BTreeSet<EffectReason>,
    /// Whether the function is offending (scale-superlinear).
    pub offending: bool,
    /// Maximal cost terms with path conditions and call chains.
    pub contributions: Vec<Contribution>,
    /// Source LOC spanned by the function plus its maximal chain.
    pub span_loc: u32,
}

/// Whole-program finder output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FinderReport {
    /// Per-function reports.
    pub functions: BTreeMap<String, FuncReport>,
    /// Offending functions, most expensive first.
    pub offending: Vec<String>,
    /// Offending ∧ PIL-safe: instrument these (Figure 2 step c).
    pub instrumentation_plan: Vec<String>,
    /// Offending but not PIL-safe: must be restructured before PIL.
    pub unsafe_offenders: Vec<String>,
}

/// Finder configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FinderConfig {
    /// Minimum `scale_order` (polynomial degree in cluster size) to
    /// call a function offending. Default 2 (superlinear in cluster size). The §4
    /// footnote's "unexpected serializations of O(N) operations" are
    /// caught by lowering this to 1.
    pub offending_threshold: u32,
}

impl Default for FinderConfig {
    fn default() -> Self {
        FinderConfig {
            offending_threshold: 2,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Summary {
    contributions: Vec<Contribution>,
    effects: BTreeSet<EffectReason>,
}

/// Runs the finder over a validated program.
pub fn analyze(program: &Program, config: FinderConfig) -> FinderReport {
    let mut cache: BTreeMap<String, Summary> = BTreeMap::new();
    let mut visiting: BTreeSet<String> = BTreeSet::new();
    let names: Vec<String> = program.functions.keys().cloned().collect();
    for name in &names {
        summarize(program, name, &mut cache, &mut visiting);
    }

    let mut functions = BTreeMap::new();
    let mut offending = Vec::new();
    for name in &names {
        let summary = &cache[name];
        let degree = summary
            .contributions
            .iter()
            .fold(Degree::CONST, |acc, c| acc.join(c.degree));
        let is_offending = degree.scale_order() >= config.offending_threshold;
        let pil_safe = summary.effects.is_empty();
        let contributions = maximal(&summary.contributions);
        let span_loc = {
            let own = program.functions[name].loc;
            let chain_loc: u32 = contributions
                .iter()
                .flat_map(|c| c.chain.iter())
                .collect::<BTreeSet<_>>()
                .iter()
                .filter_map(|f| program.functions.get(*f).map(|x| x.loc))
                .sum();
            own + chain_loc
        };
        if is_offending {
            offending.push((name.clone(), degree));
        }
        functions.insert(
            name.clone(),
            FuncReport {
                name: name.clone(),
                degree,
                pil_safe,
                effects: summary.effects.clone(),
                offending: is_offending,
                contributions,
                span_loc,
            },
        );
    }

    offending.sort_by(|a, b| {
        (b.1.scale_order(), b.1.m, b.1.log, a.0.clone()).cmp(&(
            a.1.scale_order(),
            a.1.m,
            a.1.log,
            b.0.clone(),
        ))
    });
    let offending: Vec<String> = offending.into_iter().map(|(n, _)| n).collect();
    let instrumentation_plan: Vec<String> = offending
        .iter()
        .filter(|n| functions[*n].pil_safe)
        .cloned()
        .collect();
    let unsafe_offenders: Vec<String> = offending
        .iter()
        .filter(|n| !functions[*n].pil_safe)
        .cloned()
        .collect();

    FinderReport {
        functions,
        offending,
        instrumentation_plan,
        unsafe_offenders,
    }
}

fn summarize(
    program: &Program,
    name: &str,
    cache: &mut BTreeMap<String, Summary>,
    visiting: &mut BTreeSet<String>,
) -> Summary {
    if let Some(s) = cache.get(name) {
        return s.clone();
    }
    if visiting.contains(name) {
        // Recursion: under-approximate with a flagged constant.
        let mut s = Summary::default();
        s.effects.insert(EffectReason::Recursive);
        return s;
    }
    visiting.insert(name.to_string());
    let body = program
        .functions
        .get(name)
        .map(|f| f.body.clone())
        .unwrap_or_default();
    let s = analyze_body(program, &body, cache, visiting);
    visiting.remove(name);
    cache.insert(name.to_string(), s.clone());
    s
}

fn analyze_body(
    program: &Program,
    body: &[Stmt],
    cache: &mut BTreeMap<String, Summary>,
    visiting: &mut BTreeSet<String>,
) -> Summary {
    let mut out = Summary::default();
    for st in body {
        match st {
            Stmt::Loop { over, body } => {
                let size = collection_size(program, over);
                let inner = analyze_body(program, body, cache, visiting);
                out.effects.extend(inner.effects.iter().copied());
                // The loop's own iteration cost.
                if size.is_scale_dependent() || size.m > 0 {
                    out.contributions.push(Contribution {
                        degree: size,
                        conditions: BTreeSet::new(),
                        chain: Vec::new(),
                    });
                }
                // Nesting multiplies the body's terms.
                for c in inner.contributions {
                    out.contributions.push(Contribution {
                        degree: size.mul(c.degree),
                        conditions: c.conditions,
                        chain: c.chain,
                    });
                }
            }
            Stmt::Sort { over } => {
                let size = collection_size(program, over);
                if size.is_scale_dependent() || size.m > 0 {
                    out.contributions.push(Contribution {
                        degree: size.mul(Degree::new(0, 0, 0, 1)),
                        conditions: BTreeSet::new(),
                        chain: Vec::new(),
                    });
                }
            }
            Stmt::BinarySearch { over } => {
                let size = collection_size(program, over);
                if size.is_scale_dependent() || size.m > 0 {
                    out.contributions.push(Contribution {
                        degree: Degree::new(0, 0, 0, 1),
                        conditions: BTreeSet::new(),
                        chain: Vec::new(),
                    });
                }
            }
            Stmt::Call { callee } => {
                let inner = summarize(program, callee, cache, visiting);
                out.effects.extend(inner.effects.iter().copied());
                for c in inner.contributions {
                    let mut chain = vec![callee.clone()];
                    chain.extend(c.chain);
                    out.contributions.push(Contribution {
                        degree: c.degree,
                        conditions: c.conditions,
                        chain,
                    });
                }
            }
            Stmt::Branch {
                condition,
                then_body,
                else_body,
            } => {
                let t = analyze_body(program, then_body, cache, visiting);
                let e = analyze_body(program, else_body, cache, visiting);
                out.effects.extend(t.effects.iter().copied());
                out.effects.extend(e.effects.iter().copied());
                for (arm, prefix) in [(t, ""), (e, "!")] {
                    for mut c in arm.contributions {
                        c.conditions.insert(format!("{prefix}{condition}"));
                        out.contributions.push(c);
                    }
                }
            }
            Stmt::Compute => {}
            Stmt::SendMessage => {
                out.effects.insert(EffectReason::SendsMessages);
            }
            Stmt::DiskIo => {
                out.effects.insert(EffectReason::DiskIo);
            }
            Stmt::AcquireLock { .. } | Stmt::ReleaseLock { .. } => {
                out.effects.insert(EffectReason::Locking);
            }
            Stmt::ReadClock => {
                out.effects.insert(EffectReason::Nondeterminism);
            }
        }
    }
    out.contributions = maximal(&out.contributions);
    out
}

fn collection_size(program: &Program, name: &str) -> Degree {
    program
        .collections
        .get(name)
        .map(|c| {
            if c.scale_dep {
                c.size
            } else {
                Degree::CONST.join(c.size)
            }
        })
        .unwrap_or(Degree::CONST)
}

/// Keeps only contributions not dominated by another contribution with a
/// subset of its conditions (a dominated term can never be the reason a
/// function is offending).
fn maximal(contribs: &[Contribution]) -> Vec<Contribution> {
    let mut out: Vec<Contribution> = Vec::new();
    for c in contribs {
        if contribs.iter().any(|other| {
            !std::ptr::eq(other, c)
                && other.degree.dominates(c.degree)
                && other.degree != c.degree
                && other.conditions.is_subset(&c.conditions)
        }) {
            continue;
        }
        if !out
            .iter()
            .any(|o| o.degree == c.degree && o.conditions == c.conditions)
        {
            out.push(c.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Program;

    fn loop_over(c: &str, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            over: c.into(),
            body,
        }
    }

    fn ring_program() -> Program {
        let mut p = Program::new();
        p.collection("ring", true, Degree::ring());
        p.collection("changes", true, Degree::new(0, 0, 1, 0));
        p.collection("config", false, Degree::CONST);
        p
    }

    #[test]
    fn triple_nested_loop_is_cubic() {
        let mut p = ring_program();
        p.function(
            "update_ring",
            40,
            vec![loop_over(
                "ring",
                vec![loop_over(
                    "ring",
                    vec![loop_over("ring", vec![Stmt::Compute])],
                )],
            )],
        );
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["update_ring"];
        assert_eq!(f.degree, Degree::new(3, 3, 0, 0));
        assert!(f.offending);
        assert!(f.pil_safe);
        assert_eq!(r.instrumentation_plan, vec!["update_ring".to_string()]);
    }

    #[test]
    fn loops_spanning_functions_compose() {
        // The C6127 pattern: the nest spans several functions.
        let mut p = ring_program();
        p.function("inner", 300, vec![loop_over("ring", vec![Stmt::Compute])]);
        p.function(
            "middle",
            400,
            vec![loop_over(
                "ring",
                vec![Stmt::Call {
                    callee: "inner".into(),
                }],
            )],
        );
        p.function(
            "outer",
            350,
            vec![loop_over(
                "changes",
                vec![loop_over(
                    "ring",
                    vec![Stmt::Call {
                        callee: "middle".into(),
                    }],
                )],
            )],
        );
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["outer"];
        assert_eq!(f.degree, Degree::new(3, 3, 1, 0));
        assert!(f.offending);
        // The chain names the spanned functions.
        let chains: Vec<&Vec<String>> = f.contributions.iter().map(|c| &c.chain).collect();
        assert!(
            chains
                .iter()
                .any(|ch| ch.contains(&"middle".to_string()) && ch.contains(&"inner".to_string())),
            "chain should span middle->inner: {chains:?}"
        );
        // Span LOC covers the whole nest (350 + 400 + 300).
        assert_eq!(f.span_loc, 1050);
        // inner alone is only O(N·P): not offending at threshold 2.
        assert!(!r.functions["inner"].offending);
    }

    #[test]
    fn branch_conditions_reported() {
        // C6127: the quadratic loop only runs when bootstrapping from
        // scratch.
        let mut p = ring_program();
        p.function(
            "calc",
            100,
            vec![Stmt::Branch {
                condition: "bootstrap_from_scratch".into(),
                then_body: vec![loop_over(
                    "ring",
                    vec![loop_over("ring", vec![Stmt::Compute])],
                )],
                else_body: vec![loop_over("ring", vec![Stmt::Compute])],
            }],
        );
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["calc"];
        assert!(f.offending);
        let quad = f
            .contributions
            .iter()
            .find(|c| c.degree == Degree::new(2, 2, 0, 0))
            .expect("quadratic term present");
        assert!(quad.conditions.contains("bootstrap_from_scratch"));
        // The linear term on the else path is dominated only under its
        // own conditions, so it survives with the negated condition.
        let lin = f
            .contributions
            .iter()
            .find(|c| c.degree == Degree::new(1, 1, 0, 0));
        assert!(lin.is_some_and(|c| c.conditions.contains("!bootstrap_from_scratch")));
    }

    #[test]
    fn side_effects_make_unsafe_offender() {
        let mut p = ring_program();
        p.function(
            "gossip_and_calc",
            50,
            vec![
                loop_over("ring", vec![loop_over("ring", vec![Stmt::Compute])]),
                Stmt::SendMessage,
            ],
        );
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["gossip_and_calc"];
        assert!(f.offending);
        assert!(!f.pil_safe);
        assert!(f.effects.contains(&EffectReason::SendsMessages));
        assert_eq!(r.unsafe_offenders, vec!["gossip_and_calc".to_string()]);
        assert!(r.instrumentation_plan.is_empty());
    }

    #[test]
    fn effects_propagate_through_calls() {
        let mut p = ring_program();
        p.function("leaf_io", 5, vec![Stmt::DiskIo]);
        p.function(
            "wrapper",
            5,
            vec![
                loop_over("ring", vec![loop_over("ring", vec![Stmt::Compute])]),
                Stmt::Call {
                    callee: "leaf_io".into(),
                },
            ],
        );
        let r = analyze(&p, FinderConfig::default());
        assert!(!r.functions["wrapper"].pil_safe);
        assert!(r.functions["wrapper"]
            .effects
            .contains(&EffectReason::DiskIo));
    }

    #[test]
    fn locks_and_clock_are_flagged() {
        let mut p = ring_program();
        p.function(
            "locky",
            5,
            vec![
                Stmt::AcquireLock {
                    lock: "ring_lock".into(),
                },
                Stmt::ReleaseLock {
                    lock: "ring_lock".into(),
                },
                Stmt::ReadClock,
            ],
        );
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["locky"];
        assert!(f.effects.contains(&EffectReason::Locking));
        assert!(f.effects.contains(&EffectReason::Nondeterminism));
    }

    #[test]
    fn non_scale_loops_are_not_offending() {
        let mut p = ring_program();
        p.function(
            "config_scan",
            5,
            vec![loop_over(
                "config",
                vec![loop_over("config", vec![Stmt::Compute])],
            )],
        );
        let r = analyze(&p, FinderConfig::default());
        assert!(!r.functions["config_scan"].offending);
        assert_eq!(r.functions["config_scan"].degree, Degree::CONST);
    }

    #[test]
    fn threshold_one_catches_linear_serializations() {
        // The §4 footnote: O(N) serializations are caught by lowering
        // the threshold.
        let mut p = ring_program();
        p.function("linear", 5, vec![loop_over("ring", vec![Stmt::Compute])]);
        let strict = analyze(
            &p,
            FinderConfig {
                offending_threshold: 1,
            },
        );
        let default = analyze(&p, FinderConfig::default());
        assert!(strict.functions["linear"].offending);
        assert!(!default.functions["linear"].offending);
    }

    #[test]
    fn recursion_is_flagged_not_looping_forever() {
        let mut p = ring_program();
        p.function("a", 5, vec![Stmt::Call { callee: "b".into() }]);
        p.function("b", 5, vec![Stmt::Call { callee: "a".into() }]);
        let r = analyze(&p, FinderConfig::default());
        assert!(r.functions["a"].effects.contains(&EffectReason::Recursive));
    }

    #[test]
    fn sort_contributes_log_factor() {
        let mut p = ring_program();
        p.function(
            "sorter",
            5,
            vec![loop_over(
                "ring",
                vec![Stmt::Sort {
                    over: "ring".into(),
                }],
            )],
        );
        let r = analyze(&p, FinderConfig::default());
        assert_eq!(r.functions["sorter"].degree, Degree::new(2, 2, 0, 1));
    }

    #[test]
    fn offending_sorted_most_expensive_first() {
        let mut p = ring_program();
        p.function(
            "quad",
            5,
            vec![loop_over(
                "ring",
                vec![loop_over("ring", vec![Stmt::Compute])],
            )],
        );
        p.function(
            "cubic",
            5,
            vec![loop_over(
                "ring",
                vec![loop_over(
                    "ring",
                    vec![loop_over("ring", vec![Stmt::Compute])],
                )],
            )],
        );
        let r = analyze(&p, FinderConfig::default());
        assert_eq!(r.offending, vec!["cubic".to_string(), "quad".to_string()]);
    }
}
