//! The auto-instrumentation pass (Figure 2, step c).
//!
//! "The finder also automatically inserts input/output/time recording
//! around the offending functions." Given a program and a finder
//! report, [`instrument`] rewrites every function in the
//! instrumentation plan: the original body moves to a `__original`
//! sibling and the public name becomes a wrapper that records the
//! input, delegates, and records the output and duration — the IR-level
//! equivalent of what `scalecheck-cluster`'s `CalcEngine` does for the
//! real pending-range calculation in `Record` mode.

use crate::analysis::FinderReport;
use crate::ir::{Program, Stmt};

/// Suffix given to the relocated original bodies.
pub const ORIGINAL_SUFFIX: &str = "__original";

/// Marker statements inserted by the pass.
///
/// These extend [`Stmt`] logically; to keep the IR closed they are
/// expressed as calls to well-known intrinsic functions that the pass
/// declares.
pub const RECORD_INPUT: &str = "__scalecheck_record_input";
/// Output/duration recording intrinsic.
pub const RECORD_OUTPUT_TIME: &str = "__scalecheck_record_output_time";

/// Errors from the instrumentation pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstrumentError {
    /// A planned function does not exist in the program.
    UnknownFunction(String),
    /// The program already contains instrumented names (double pass).
    AlreadyInstrumented(String),
}

impl std::fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstrumentError::UnknownFunction(n) => {
                write!(f, "cannot instrument unknown function '{n}'")
            }
            InstrumentError::AlreadyInstrumented(n) => {
                write!(f, "function '{n}' is already instrumented")
            }
        }
    }
}

impl std::error::Error for InstrumentError {}

/// Applies the instrumentation plan of `report` to a copy of `program`.
///
/// For each planned function `f`:
///
/// 1. `f`'s body moves to `f__original`;
/// 2. `f` becomes `record_input(); f__original(); record_output_time()`.
///
/// Call sites keep calling `f`, so the whole program transparently
/// gains memoization hooks — exactly the property PIL replacement needs.
pub fn instrument(program: &Program, report: &FinderReport) -> Result<Program, InstrumentError> {
    let mut out = program.clone();
    // Declare the recording intrinsics once (constant-cost bookkeeping).
    out.function(RECORD_INPUT, 1, vec![Stmt::Compute]);
    out.function(RECORD_OUTPUT_TIME, 1, vec![Stmt::Compute]);

    for name in &report.instrumentation_plan {
        let Some(original) = out.functions.get(name).cloned() else {
            return Err(InstrumentError::UnknownFunction(name.clone()));
        };
        let moved = format!("{name}{ORIGINAL_SUFFIX}");
        if out.functions.contains_key(&moved) {
            return Err(InstrumentError::AlreadyInstrumented(name.clone()));
        }
        out.function(&moved, original.loc, original.body.clone());
        out.function(
            name,
            3,
            vec![
                Stmt::Call {
                    callee: RECORD_INPUT.into(),
                },
                Stmt::Call {
                    callee: moved.clone(),
                },
                Stmt::Call {
                    callee: RECORD_OUTPUT_TIME.into(),
                },
            ],
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, FinderConfig};
    use crate::model::cluster_protocol_model;

    fn instrumented_model() -> (Program, FinderReport) {
        let p = cluster_protocol_model();
        let report = analyze(&p, FinderConfig::default());
        let out = instrument(&p, &report).expect("instrumentable");
        (out, report)
    }

    #[test]
    fn instrumented_program_still_validates() {
        let (out, _) = instrumented_model();
        assert!(out.validate().is_ok());
    }

    #[test]
    fn planned_functions_become_wrappers() {
        let (out, report) = instrumented_model();
        for name in &report.instrumentation_plan {
            let f = &out.functions[name];
            assert_eq!(f.body.len(), 3, "{name} should be a 3-call wrapper");
            assert!(matches!(
                &f.body[0],
                Stmt::Call { callee } if callee == RECORD_INPUT
            ));
            assert!(matches!(
                &f.body[2],
                Stmt::Call { callee } if callee == RECORD_OUTPUT_TIME
            ));
            assert!(
                out.functions
                    .contains_key(&format!("{name}{ORIGINAL_SUFFIX}")),
                "{name} original preserved"
            );
        }
    }

    #[test]
    fn unplanned_functions_untouched() {
        let p = cluster_protocol_model();
        let report = analyze(&p, FinderConfig::default());
        let out = instrument(&p, &report).unwrap();
        for (name, f) in &p.functions {
            if !report.instrumentation_plan.contains(name) {
                assert_eq!(out.functions[name].loc, f.loc, "{name} must be unchanged");
            }
        }
    }

    #[test]
    fn instrumented_degree_is_preserved() {
        // Wrapping must not change asymptotic cost: the wrapper's
        // degree equals the original's (intrinsics are O(1)).
        let p = cluster_protocol_model();
        let before = analyze(&p, FinderConfig::default());
        let out = instrument(&p, &before).unwrap();
        let after = analyze(&out, FinderConfig::default());
        for name in &before.instrumentation_plan {
            assert_eq!(
                before.functions[name].degree, after.functions[name].degree,
                "{name} degree changed"
            );
        }
    }

    #[test]
    fn double_instrumentation_rejected() {
        let p = cluster_protocol_model();
        let report = analyze(&p, FinderConfig::default());
        let once = instrument(&p, &report).unwrap();
        let err = instrument(&once, &report).unwrap_err();
        assert!(matches!(err, InstrumentError::AlreadyInstrumented(_)));
        assert!(err.to_string().contains("already"));
    }

    #[test]
    fn unknown_function_rejected() {
        let p = cluster_protocol_model();
        let mut report = analyze(&p, FinderConfig::default());
        report.instrumentation_plan.push("ghost".into());
        let err = instrument(&p, &report).unwrap_err();
        assert_eq!(err, InstrumentError::UnknownFunction("ghost".into()));
    }
}
