//! The PIL-safe / offending-function finder (paper §5, §7 steps a–c).
//!
//! The paper proposes — as future work — a program analysis that, given
//! lightweight `@scaledep` annotations on data structures, finds:
//!
//! * **offending functions**: scale-dependent (possibly nested) loops,
//!   possibly spanning many functions, possibly hidden behind branches
//!   that only specific workloads exercise;
//! * **PIL-safe functions**: memoizable (deterministic output for a
//!   given input) and free of side effects (no sends, disk I/O, locks).
//!
//! This crate implements that analysis over a small protocol IR
//! ([`ir::Program`]): interprocedural symbolic complexity
//! ([`complexity::Degree`]), path-condition tracking, effect inference,
//! and the resulting instrumentation plan ([`analysis::FinderReport`]).
//! [`model::cluster_protocol_model`] ships an IR model of this
//! repository's own cluster substrate, structured like the historical
//! Cassandra code (the cubic nest spans nine functions; the quadratic
//! fresh-ring loop hides behind a bootstrap-only branch).
//!
//! # Examples
//!
//! ```
//! use scalecheck_pilfinder::{analyze, cluster_protocol_model, FinderConfig};
//!
//! let report = analyze(&cluster_protocol_model(), FinderConfig::default());
//! // The cubic pending-range calculation is offending and PIL-safe:
//! assert!(report.instrumentation_plan.iter().any(|f| f == "calculate_pending_ranges_v1"));
//! // The gossip handler is expensive but sends messages, so it may not
//! // take the PIL:
//! assert!(report.unsafe_offenders.iter().any(|f| f == "handle_gossip_ack"));
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod complexity;
pub mod instrument;
pub mod ir;
pub mod model;

pub use analysis::{analyze, Contribution, EffectReason, FinderConfig, FinderReport, FuncReport};
pub use complexity::Degree;
pub use instrument::{instrument, InstrumentError, ORIGINAL_SUFFIX};
pub use ir::{Collection, Function, IrError, Program, Stmt};
pub use model::cluster_protocol_model;
