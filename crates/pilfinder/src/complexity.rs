//! Symbolic complexity degrees.
//!
//! The finder reasons about growth in four symbols: `N` (physical
//! nodes), `P` (virtual nodes per physical node), `M` (topology changes
//! in a gossip message), and `log` factors. A [`Degree`] is one product
//! term `N^n · P^p · M^m · log^l`; sequencing takes the dominating term,
//! nesting multiplies terms.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One growth term `N^n · P^p · M^m · log^l`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Degree {
    /// Exponent of N (cluster size).
    pub n: u32,
    /// Exponent of P (vnodes per node).
    pub p: u32,
    /// Exponent of M (change-list length).
    pub m: u32,
    /// Exponent of the log factor.
    pub log: u32,
}

impl Degree {
    /// The constant degree (O(1)).
    pub const CONST: Degree = Degree {
        n: 0,
        p: 0,
        m: 0,
        log: 0,
    };

    /// Builds a degree.
    pub const fn new(n: u32, p: u32, m: u32, log: u32) -> Self {
        Degree { n, p, m, log }
    }

    /// Linear in cluster size: `N·P` (the ring-table size).
    pub const fn ring() -> Self {
        Degree::new(1, 1, 0, 0)
    }

    /// Product of two degrees (nesting).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Degree) -> Degree {
        Degree {
            n: self.n + other.n,
            p: self.p + other.p,
            m: self.m + other.m,
            log: self.log + other.log,
        }
    }

    /// The *scale order*: the polynomial degree in units of cluster
    /// size. The ring table has N·P entries, so one pass over it is one
    /// unit (`max(n, p)`): a loop over the ring contributes order 1, the
    /// C3831 triple nest order 3.
    pub fn scale_order(self) -> u32 {
        self.n.max(self.p)
    }

    /// Whether `self` grows at least as fast as `other` in every symbol.
    pub fn dominates(self, other: Degree) -> bool {
        self.n >= other.n && self.p >= other.p && self.m >= other.m && self.log >= other.log
    }

    /// The pointwise maximum used when sequencing two blocks whose
    /// degrees are incomparable (a safe upper bound).
    pub fn join(self, other: Degree) -> Degree {
        Degree {
            n: self.n.max(other.n),
            p: self.p.max(other.p),
            m: self.m.max(other.m),
            log: self.log.max(other.log),
        }
    }

    /// Whether this degree is scale-dependent at all.
    pub fn is_scale_dependent(self) -> bool {
        self.scale_order() > 0
    }
}

impl fmt::Display for Degree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Degree::CONST {
            return write!(f, "O(1)");
        }
        write!(f, "O(")?;
        let mut first = true;
        let mut part = |f: &mut fmt::Formatter<'_>, sym: &str, e: u32| -> fmt::Result {
            if e == 0 {
                return Ok(());
            }
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if e == 1 {
                write!(f, "{sym}")
            } else {
                write!(f, "{sym}^{e}")
            }
        };
        part(f, "M", self.m)?;
        part(f, "N", self.n)?;
        part(f, "P", self.p)?;
        part(f, "log", self.log)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_adds_exponents() {
        let a = Degree::new(1, 1, 0, 0);
        let b = Degree::new(2, 0, 1, 1);
        assert_eq!(a.mul(b), Degree::new(3, 1, 1, 1));
    }

    #[test]
    fn join_takes_pointwise_max() {
        let a = Degree::new(3, 0, 0, 0);
        let b = Degree::new(1, 2, 1, 0);
        assert_eq!(a.join(b), Degree::new(3, 2, 1, 0));
    }

    #[test]
    fn dominates_is_pointwise() {
        let big = Degree::new(2, 1, 1, 1);
        let small = Degree::new(1, 1, 0, 1);
        assert!(big.dominates(small));
        assert!(!small.dominates(big));
        // Incomparable pair.
        let a = Degree::new(2, 0, 0, 0);
        let b = Degree::new(0, 2, 0, 0);
        assert!(!a.dominates(b) && !b.dominates(a));
    }

    #[test]
    fn scale_order_counts_cluster_symbols_only() {
        assert_eq!(Degree::new(2, 1, 5, 3).scale_order(), 2);
        assert_eq!(Degree::new(3, 3, 1, 0).scale_order(), 3);
        assert_eq!(Degree::new(0, 0, 9, 9).scale_order(), 0);
        assert!(!Degree::new(0, 0, 1, 0).is_scale_dependent());
        assert!(Degree::ring().is_scale_dependent());
    }

    #[test]
    fn display_formats_readably() {
        assert_eq!(Degree::CONST.to_string(), "O(1)");
        assert_eq!(Degree::new(3, 0, 1, 3).to_string(), "O(M·N^3·log^3)");
        assert_eq!(Degree::ring().to_string(), "O(N·P)");
    }
}
