//! The protocol intermediate representation the finder analyzes.
//!
//! The paper's finder is a program analysis over the target system's
//! source (§5, §7 b). Here the distributed protocol is modelled in a
//! small IR: functions contain loops over named collections, calls,
//! branches guarded by workload predicates, and effectful statements
//! (sends, disk I/O, locks, clock reads). Collections annotated
//! `@scaledep` (step a, "<30 LOC of annotations") carry a symbolic size;
//! loops over them are what makes a function scale-dependent.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::complexity::Degree;

/// A named collection with a symbolic size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Collection {
    /// Collection name (e.g. `"ring_table"`).
    pub name: String,
    /// Whether the developer annotated it `@scaledep`.
    pub scale_dep: bool,
    /// Symbolic size per iteration of a loop over it (e.g. `N·P` for the
    /// ring table, `M` for a change list). Non-scale-dep collections use
    /// `Degree::CONST`.
    pub size: Degree,
}

/// One statement in a function body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Stmt {
    /// A loop over a named collection; cost = |collection| × body.
    Loop {
        /// Name of the collection iterated.
        over: String,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A sort of a named collection (|c|·log|c| comparisons).
    Sort {
        /// Name of the collection sorted.
        over: String,
    },
    /// A binary search over a named collection (log|c|).
    BinarySearch {
        /// Name of the collection searched.
        over: String,
    },
    /// A call to another function in the program.
    Call {
        /// Callee name.
        callee: String,
    },
    /// A branch guarded by a workload predicate; both arms analyzed.
    Branch {
        /// Human-readable predicate (e.g. `"bootstrap_from_scratch"`).
        condition: String,
        /// Taken when the predicate holds.
        then_body: Vec<Stmt>,
        /// Taken otherwise.
        else_body: Vec<Stmt>,
    },
    /// Constant-cost local computation.
    Compute,
    /// Sends a network message (side effect: not PIL-safe).
    SendMessage,
    /// Disk I/O (side effect: not PIL-safe).
    DiskIo,
    /// Acquires a named lock (blocking: not PIL-safe).
    AcquireLock {
        /// Lock name.
        lock: String,
    },
    /// Releases a named lock.
    ReleaseLock {
        /// Lock name.
        lock: String,
    },
    /// Reads the wall clock or RNG (nondeterministic: not memoizable).
    ReadClock,
}

/// A function in the modelled protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Approximate source size, for "loops span 1000+ LOC" style
    /// reporting.
    pub loc: u32,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole modelled protocol: collections plus functions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Collections by name.
    pub collections: BTreeMap<String, Collection>,
    /// Functions by name.
    pub functions: BTreeMap<String, Function>,
}

/// Errors detected while validating a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// A loop/sort/search references an unknown collection.
    UnknownCollection(String, String),
    /// A call references an unknown function.
    UnknownFunction(String, String),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UnknownCollection(func, c) => {
                write!(f, "function '{func}' references unknown collection '{c}'")
            }
            IrError::UnknownFunction(func, callee) => {
                write!(f, "function '{func}' calls unknown function '{callee}'")
            }
        }
    }
}

impl std::error::Error for IrError {}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declares a collection.
    pub fn collection(&mut self, name: &str, scale_dep: bool, size: Degree) -> &mut Self {
        self.collections.insert(
            name.to_string(),
            Collection {
                name: name.to_string(),
                scale_dep,
                size,
            },
        );
        self
    }

    /// Declares a function.
    pub fn function(&mut self, name: &str, loc: u32, body: Vec<Stmt>) -> &mut Self {
        self.functions.insert(
            name.to_string(),
            Function {
                name: name.to_string(),
                loc,
                body,
            },
        );
        self
    }

    /// Validates referential integrity of loops and calls.
    pub fn validate(&self) -> Result<(), Vec<IrError>> {
        let mut errs = Vec::new();
        for f in self.functions.values() {
            self.validate_body(&f.name, &f.body, &mut errs);
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    fn validate_body(&self, func: &str, body: &[Stmt], errs: &mut Vec<IrError>) {
        for st in body {
            match st {
                Stmt::Loop { over, body } => {
                    if !self.collections.contains_key(over) {
                        errs.push(IrError::UnknownCollection(func.into(), over.clone()));
                    }
                    self.validate_body(func, body, errs);
                }
                Stmt::Sort { over } | Stmt::BinarySearch { over }
                    if !self.collections.contains_key(over) =>
                {
                    errs.push(IrError::UnknownCollection(func.into(), over.clone()));
                }
                Stmt::Call { callee } if !self.functions.contains_key(callee) => {
                    errs.push(IrError::UnknownFunction(func.into(), callee.clone()));
                }
                Stmt::Branch {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.validate_body(func, then_body, errs);
                    self.validate_body(func, else_body, errs);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_ok() {
        let mut p = Program::new();
        p.collection("ring", true, Degree::ring());
        p.function(
            "f",
            10,
            vec![Stmt::Loop {
                over: "ring".into(),
                body: vec![Stmt::Compute],
            }],
        );
        p.function("g", 5, vec![Stmt::Call { callee: "f".into() }]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn unknown_collection_caught() {
        let mut p = Program::new();
        p.function(
            "f",
            1,
            vec![Stmt::Loop {
                over: "nope".into(),
                body: vec![],
            }],
        );
        let errs = p.validate().unwrap_err();
        assert_eq!(
            errs,
            vec![IrError::UnknownCollection("f".into(), "nope".into())]
        );
        assert!(errs[0].to_string().contains("unknown collection"));
    }

    #[test]
    fn unknown_callee_caught_in_nested_branch() {
        let mut p = Program::new();
        p.function(
            "f",
            1,
            vec![Stmt::Branch {
                condition: "c".into(),
                then_body: vec![Stmt::Call {
                    callee: "ghost".into(),
                }],
                else_body: vec![],
            }],
        );
        let errs = p.validate().unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], IrError::UnknownFunction(_, _)));
    }

    #[test]
    fn sort_and_search_validate_collections() {
        let mut p = Program::new();
        p.collection("xs", false, Degree::CONST);
        p.function(
            "f",
            1,
            vec![
                Stmt::Sort { over: "xs".into() },
                Stmt::BinarySearch { over: "ys".into() },
            ],
        );
        let errs = p.validate().unwrap_err();
        assert_eq!(errs.len(), 1);
    }
}
