//! An IR model of the cluster substrate's gossip/rebalance protocols.
//!
//! This is the model the finder experiments run on. It mirrors the
//! actual Rust implementation in `scalecheck-cluster`/`scalecheck-ring`,
//! structured the way the historical Cassandra code was: the cubic loop
//! nest spans many helper functions (C6127's "O(N³) loops span 1000+ LOC
//! across 9 functions"), and the quadratic fresh-ring construction hides
//! behind a `bootstrap_from_scratch` branch that only that workload
//! exercises.

use crate::complexity::Degree;
use crate::ir::{Program, Stmt};

fn l(over: &str, body: Vec<Stmt>) -> Stmt {
    Stmt::Loop {
        over: over.into(),
        body,
    }
}

fn call(callee: &str) -> Stmt {
    Stmt::Call {
        callee: callee.into(),
    }
}

/// Builds the protocol model.
///
/// Collections (the step-a `@scaledep` annotations — a handful of lines,
/// matching the paper's "<30 LOC"):
///
/// * `ring_table` — size N·P, scale-dependent;
/// * `change_list` — size M, the gossip message's pending changes;
/// * `endpoint_states` — size N, scale-dependent;
/// * `seed_list` — constant.
pub fn cluster_protocol_model() -> Program {
    let mut p = Program::new();
    p.collection("ring_table", true, Degree::ring())
        .collection("change_list", true, Degree::new(0, 0, 1, 0))
        .collection("endpoint_states", true, Degree::new(1, 0, 0, 0))
        .collection("seed_list", false, Degree::CONST);

    // --- The v1 (pre-C3831) cubic nest, spanning 9 functions. ---
    // handle_gossip_ack -> apply_endpoint_states -> on_topology_change ->
    // calculate_pending_ranges_v1 -> per_change_recompute ->
    // collect_future_replicas -> node_replicates_range ->
    // walk_ring_for_node -> record_pending_range.
    p.function("record_pending_range", 60, vec![Stmt::Compute]);
    p.function(
        "walk_ring_for_node",
        140,
        vec![l("ring_table", vec![Stmt::Compute])],
    );
    p.function(
        "node_replicates_range",
        90,
        vec![call("walk_ring_for_node")],
    );
    p.function(
        "collect_future_replicas",
        160,
        vec![l(
            "ring_table",
            vec![call("node_replicates_range"), call("record_pending_range")],
        )],
    );
    p.function(
        "per_change_recompute",
        180,
        vec![
            Stmt::Sort {
                over: "ring_table".into(),
            },
            l("ring_table", vec![call("collect_future_replicas")]),
        ],
    );
    p.function(
        "calculate_pending_ranges_v1",
        220,
        vec![l("change_list", vec![call("per_change_recompute")])],
    );
    p.function(
        "on_topology_change",
        120,
        vec![call("calculate_pending_ranges_v1")],
    );
    p.function(
        "apply_endpoint_states",
        150,
        vec![l(
            "endpoint_states",
            vec![Stmt::Branch {
                condition: "state_carries_topology_change".into(),
                then_body: vec![call("on_topology_change")],
                else_body: vec![Stmt::Compute],
            }],
        )],
    );
    p.function(
        "handle_gossip_ack",
        130,
        vec![call("apply_endpoint_states"), Stmt::SendMessage],
    );

    // --- The v3 (fixed) calculation with the C6127 bootstrap branch. ---
    p.function(
        "calculate_pending_ranges_v3",
        240,
        vec![Stmt::Branch {
            condition: "bootstrap_from_scratch".into(),
            then_body: vec![
                // Fresh-ring construction: quadratic (linear point lookup
                // per range).
                l(
                    "change_list",
                    vec![l("ring_table", vec![l("ring_table", vec![Stmt::Compute])])],
                ),
            ],
            else_body: vec![l(
                "change_list",
                vec![
                    Stmt::Sort {
                        over: "ring_table".into(),
                    },
                    l(
                        "ring_table",
                        vec![Stmt::BinarySearch {
                            over: "ring_table".into(),
                        }],
                    ),
                ],
            )],
        }],
    );

    // --- The C5456 shape: calc on its own stage but under the ring lock. ---
    p.function(
        "calc_with_coarse_lock",
        110,
        vec![
            Stmt::AcquireLock {
                lock: "ring_table_lock".into(),
            },
            call("calculate_pending_ranges_v1"),
            Stmt::ReleaseLock {
                lock: "ring_table_lock".into(),
            },
        ],
    );

    // --- Benign functions the finder must not flag. ---
    p.function(
        "make_gossip_syn",
        80,
        vec![l("endpoint_states", vec![Stmt::Compute]), Stmt::SendMessage],
    );
    p.function(
        "failure_detector_tick",
        70,
        vec![l("endpoint_states", vec![Stmt::Compute])],
    );
    p.function("persist_commit_log", 90, vec![Stmt::DiskIo]);
    p.function(
        "choose_gossip_target",
        30,
        vec![Stmt::ReadClock, Stmt::Compute],
    );
    p.function(
        "read_seed_config",
        20,
        vec![l("seed_list", vec![Stmt::Compute])],
    );

    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, FinderConfig};

    #[test]
    fn model_validates() {
        assert!(cluster_protocol_model().validate().is_ok());
    }

    #[test]
    fn v1_chain_is_cubic_and_spans_functions() {
        let p = cluster_protocol_model();
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["calculate_pending_ranges_v1"];
        assert!(f.offending);
        assert!(f.pil_safe);
        // M * (NP) ranges * (NP) nodes * (NP) walk = cubic in N and P.
        assert_eq!(f.degree.n, 3);
        assert_eq!(f.degree.p, 3);
        assert_eq!(f.degree.m, 1);
        // Spans >= 4 functions and 1000+ LOC, like C6127.
        assert!(f.span_loc > 600, "span {}", f.span_loc);
        let deepest = f.contributions.iter().map(|c| c.chain.len()).max().unwrap();
        assert!(deepest >= 3, "chain depth {deepest}");
    }

    #[test]
    fn bootstrap_branch_is_reported_with_condition() {
        let p = cluster_protocol_model();
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["calculate_pending_ranges_v3"];
        assert!(f.offending, "bootstrap path makes v3 offending");
        let boot = f
            .contributions
            .iter()
            .find(|c| c.conditions.contains("bootstrap_from_scratch"))
            .expect("bootstrap contribution");
        assert_eq!(boot.degree.n, 2);
        assert_eq!(boot.degree.m, 1);
        // The incremental path is merely ~linear with logs.
        let incr = f
            .contributions
            .iter()
            .find(|c| c.conditions.contains("!bootstrap_from_scratch"))
            .expect("incremental contribution");
        assert!(incr.degree.scale_order() <= 2);
    }

    #[test]
    fn gossip_handler_is_offending_but_unsafe() {
        let p = cluster_protocol_model();
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["handle_gossip_ack"];
        assert!(f.offending);
        assert!(!f.pil_safe, "it sends messages");
        assert!(r.unsafe_offenders.contains(&"handle_gossip_ack".into()));
    }

    #[test]
    fn coarse_lock_calc_is_unsafe_for_pil() {
        let p = cluster_protocol_model();
        let r = analyze(&p, FinderConfig::default());
        let f = &r.functions["calc_with_coarse_lock"];
        assert!(f.offending);
        assert!(!f.pil_safe, "locking is a side effect");
    }

    #[test]
    fn instrumentation_plan_is_the_pure_calcs() {
        let p = cluster_protocol_model();
        let r = analyze(&p, FinderConfig::default());
        assert!(r
            .instrumentation_plan
            .contains(&"calculate_pending_ranges_v1".into()));
        assert!(r
            .instrumentation_plan
            .contains(&"calculate_pending_ranges_v3".into()));
        assert!(!r.instrumentation_plan.contains(&"handle_gossip_ack".into()));
        assert!(!r
            .instrumentation_plan
            .contains(&"persist_commit_log".into()));
    }

    #[test]
    fn benign_functions_not_flagged() {
        let p = cluster_protocol_model();
        let r = analyze(&p, FinderConfig::default());
        for name in [
            "make_gossip_syn",
            "failure_detector_tick",
            "persist_commit_log",
            "choose_gossip_target",
            "read_seed_config",
        ] {
            assert!(!r.functions[name].offending, "{name} wrongly offending");
        }
    }

    #[test]
    fn nondeterminism_detected() {
        let p = cluster_protocol_model();
        let r = analyze(&p, FinderConfig::default());
        assert!(!r.functions["choose_gossip_target"].pil_safe);
    }
}
