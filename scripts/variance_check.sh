#!/usr/bin/env bash
# Seed-variance spot check for the headline Figure 3a point (N=256):
# Real and SC+PIL flap counts across three seeds.
set -u
cd "$(dirname "$0")/.."
BIN=target/release
for seed in 1 2 3; do
  echo "=== seed $seed ==="
  "$BIN/diag_run" --bug c3831 --nodes 256 --mode real --seed "$seed" | grep -E '^flaps|^duration'
  "$BIN/diag_run" --bug c3831 --nodes 256 --mode pil --seed "$seed" 2>/dev/null | grep -E '^flaps|^duration'
done
