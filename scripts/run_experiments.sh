#!/usr/bin/env bash
# Regenerates every paper artifact into results/.
# Usage: scripts/run_experiments.sh [--quick]
# --quick caps Figure 3 sweeps at N=96 for a fast smoke pass.
set -u
cd "$(dirname "$0")/.."
SCALES="32,64,128,256"
if [ "${1:-}" = "--quick" ]; then SCALES="32,64,96"; fi
BIN=target/release
cargo build --workspace --release || exit 1

run() {
  name=$1; shift
  echo "=== $name ==="
  "$@" >"results/$name.txt" 2>"results/$name.log"
  echo "    -> results/$name.txt"
}

run fig3a_c3831 "$BIN/fig3_flaps" --bug c3831 --scales "$SCALES"
run fig3b_c3881 "$BIN/fig3_flaps" --bug c3881 --scales "$SCALES"
run fig3c_c5456 "$BIN/fig3_flaps" --bug c5456 --scales "$SCALES"
run fig1_testtime "$BIN/fig1_testtime"
run tbl_memo_vs_replay "$BIN/tbl_memo_vs_replay" --nodes 256
run tbl_colocation_limit "$BIN/tbl_colocation_limit"
run tbl_complexity "$BIN/tbl_complexity"
run tbl_bugstudy "$BIN/tbl_bugstudy"
run tbl_finder "$BIN/tbl_finder"
run tbl_memory "$BIN/tbl_memory"
run tbl_statespace "$BIN/tbl_statespace"
run tbl_fix_ablation "$BIN/tbl_fix_ablation" --nodes 256
run tbl_baselines "$BIN/tbl_baselines" --target 256
run ext_hdfs "$BIN/ext_hdfs"
run fig_c6127 "$BIN/fig_c6127"
echo "all experiments done"
