#!/usr/bin/env bash
# Regenerates every paper artifact into results/.
# Usage: scripts/run_experiments.sh [--quick] [--jobs N] [--no-cache] [--faults LIST] [--diverge]
# --quick       caps Figure 3 sweeps at N=96 for a fast smoke pass.
# --jobs N      worker threads per experiment sweep (default: all cores).
# --no-cache    ignore and bypass the on-disk result cache (results/cache/).
# --faults LIST comma-separated storm intensities passed through to
#               tbl_faults (default 0,0.3,0.7).
# --diverge     also regenerate TBL_diverge.txt (the §6 divergence
#               attribution at C3831/N=128: three traced runs + two
#               analyzer passes — several extra minutes).
# --scale       also regenerate BENCH_scale.json / TBL_scale.txt (the
#               256–4096-node harness-throughput sweep; the big cells
#               take tens of minutes each on a cold cache).
# --explore     also regenerate TBL_explore.txt (schedule-exploration
#               outcomes: stock presets stay tick-commutative, the
#               race preset yields shrunk single-swap witnesses).
# --slo         also regenerate BENCH_slo.json / TBL_slo.txt (the
#               client-traffic SLO triples: per-bug tail-latency and
#               error-budget verdicts under Real / Colo / SC+PIL).
set -u
cd "$(dirname "$0")/.."
SCALES="32,64,128,256"
SCALE_SCALES="256,512,1024,2048"
FAULT_INTENSITIES="0,0.3,0.7"
DIVERGE=0
SCALE=0
EXPLORE=0
SLO=0
SWEEP_FLAGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) SCALES="32,64,96" ;;
    --jobs)
      [ $# -ge 2 ] || { echo "--jobs needs a value" >&2; exit 2; }
      SWEEP_FLAGS+=(--jobs "$2"); shift ;;
    --no-cache) SWEEP_FLAGS+=(--no-cache) ;;
    --faults)
      [ $# -ge 2 ] || { echo "--faults needs a value" >&2; exit 2; }
      FAULT_INTENSITIES="$2"; shift ;;
    --diverge) DIVERGE=1 ;;
    --scale) SCALE=1 ;;
    --explore) EXPLORE=1 ;;
    --slo) SLO=1 ;;
    *) echo "unknown flag: $1" >&2; echo "usage: $0 [--quick] [--jobs N] [--no-cache] [--faults LIST] [--diverge] [--scale] [--explore] [--slo]" >&2; exit 2 ;;
  esac
  shift
done
BIN=target/release
cargo build --workspace --release || exit 1

run() {
  name=$1; shift
  echo "=== $name ==="
  "$@" ${SWEEP_FLAGS[@]+"${SWEEP_FLAGS[@]}"} >"results/$name.txt" 2>"results/$name.log"
  echo "    -> results/$name.txt"
}

run fig3a_c3831 "$BIN/fig3_flaps" --bug c3831 --scales "$SCALES"
run fig3b_c3881 "$BIN/fig3_flaps" --bug c3881 --scales "$SCALES"
run fig3c_c5456 "$BIN/fig3_flaps" --bug c5456 --scales "$SCALES"
run fig1_testtime "$BIN/fig1_testtime"
run tbl_memo_vs_replay "$BIN/tbl_memo_vs_replay" --nodes 256
run tbl_colocation_limit "$BIN/tbl_colocation_limit"
run tbl_complexity "$BIN/tbl_complexity"
run tbl_bugstudy "$BIN/tbl_bugstudy"
run tbl_finder "$BIN/tbl_finder"
run tbl_memory "$BIN/tbl_memory"
run tbl_statespace "$BIN/tbl_statespace"
run tbl_fix_ablation "$BIN/tbl_fix_ablation" --nodes 256
run tbl_baselines "$BIN/tbl_baselines" --target 256
run ext_hdfs "$BIN/ext_hdfs"
run fig_c6127 "$BIN/fig_c6127"
run tbl_faults "$BIN/tbl_faults" --bug c3831 --intensities "$FAULT_INTENSITIES"
# Engine microbenchmark trajectory: writes BENCH_engine.json at the
# repo root (tracked) in addition to the results/ transcript.
run bench_engine "$BIN/bench_engine" --out BENCH_engine.json
# §6 divergence attribution: three traced 128-node runs plus the
# analyzer; writes TBL_diverge.txt at the repo root (tracked). Traced
# runs defeat the result cache, so this is opt-in.
if [ "$DIVERGE" = 1 ]; then
  run tbl_diverge "$BIN/tbl_diverge" --nodes 128 --out TBL_diverge.txt
fi
# Harness-throughput scale sweep: writes BENCH_scale.json and
# TBL_scale.txt at the repo root (tracked). The 2048/4096-node cells
# are expensive on a cold cache, so this is opt-in.
if [ "$SCALE" = 1 ]; then
  run tbl_scale "$BIN/tbl_scale" --scales "$SCALE_SCALES"
fi
# Schedule-exploration outcomes: writes TBL_explore.txt at the repo
# root (tracked). Deterministic: the eval cap (not the wall budget,
# which is sized never to bind) cuts every cell, so regeneration
# reproduces the committed table byte-for-byte.
# Client-traffic SLO triples: writes BENCH_slo.json and TBL_slo.txt at
# the repo root (tracked). Deterministic virtual-time results; opt-in
# because the 256-node Colo cells re-execute the bug scenarios with the
# coupled datapath attached (minutes each).
if [ "$SLO" = 1 ]; then
  run tbl_slo "$BIN/tbl_slo"
fi
if [ "$EXPLORE" = 1 ]; then
  run tbl_explore "$BIN/explore_run" \
    --cells c3831:64:1:colo,c3881:48:1:colo,c5456:48:1:colo,race:40:1:real,race:40:2:real,race:40:3:real,race:40:4:real \
    --max-evals 64 --max-swaps 1024 --shuffles 8 --budget-secs 1200 \
    --table-out TBL_explore.txt
fi
echo "all experiments done"
