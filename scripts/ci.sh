#!/usr/bin/env bash
# The full local CI gate: format, lint, build, test.
# Usage: scripts/ci.sh
#
# Note: the repo root is both a [workspace] and a [package], so plain
# `cargo test` covers only the root crate; the --workspace forms below
# cover every member. Both must stay green.
set -eu
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (workspace, -D warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release (workspace) ==="
cargo build --release --workspace

echo "=== cargo test (root package) ==="
cargo test -q

echo "=== cargo test (workspace) ==="
cargo test --workspace -q

# The fault/regression suites gate the determinism and paper-shape
# contracts; run them by name so a failure is attributable at a glance
# even though the broad passes above include them.
echo "=== scenario regressions (paper shapes at pinned seeds) ==="
cargo test -q --test bug_regressions

echo "=== fault injection + determinism ==="
cargo test -q --test failure_injection

echo "=== property suites (incl. fault-layer invariants) ==="
cargo test -q --test proptests

echo "=== sweep cache keyed on fault plans ==="
cargo test -q -p scalecheck-bench --test sweep_integration

# Observability: the tracer/metrics/export unit suites, then the
# end-to-end contracts (trace determinism across --jobs, Chrome-export
# well-formedness) by name so a failure is attributable at a glance.
echo "=== obs unit suites (tracer, histograms, exporters, analyzer) ==="
cargo test -q -p scalecheck-obs

echo "=== obs integration (determinism across jobs, chrome export) ==="
cargo test -q -p scalecheck-bench --test obs_integration

# The §6 divergence narrative needs three 128-node traced runs; far
# too slow under the dev profile, so the test is #[ignore]d there and
# run here against the release build.
echo "=== §6 divergence narrative (c3831@128, release) ==="
cargo test --release -q -p scalecheck-bench --test obs_integration -- --ignored

# Trace-pipeline smoke: a real run exports a Chrome trace and the
# analyzer loads a pair of them end to end through the CLI surface.
echo "=== diag_run trace export + analyzer smoke ==="
target/release/diag_run --bug c3831 --nodes 12 --mode real --no-cache \
  --trace-out target/ci_trace_real.json
target/release/diag_run --bug c3831 --nodes 12 --mode colo --no-cache \
  --trace-out target/ci_trace_colo.json
target/release/diag_run --diverge target/ci_trace_real.json target/ci_trace_colo.json

# Perf smoke: the engine microbenchmark must run, emit well-formed
# bench_engine/v2 JSON with nonzero throughput on every scenario,
# keep disabled-tracing overhead under its budget (<2%, 0 allocs per
# emission), and the wheel/heap differential property suites must
# hold. The smoke sizes keep this under a minute; trajectory numbers
# come from the full run in scripts/run_experiments.sh (see
# EXPERIMENTS.md).
echo "=== engine perf smoke (bench_engine --smoke) ==="
target/release/bench_engine --smoke --out target/BENCH_engine_smoke.json
target/release/bench_engine --verify target/BENCH_engine_smoke.json

echo "=== wheel/heap differential properties ==="
cargo test -q --test proptests wheel_and_heap_schedulers_are_indistinguishable
cargo test -q --test proptests steady_state_periodic_timers_run_allocation_free

# Scale smoke: the harness must stay fast enough to reach the scales
# the paper argues for. One 1024-node SC+PIL cell runs cache-free and
# must finish inside the wall budget (sized for a single-CPU worker),
# and its row must satisfy the bench_scale/v1 schema. Full trajectory
# numbers come from scripts/run_experiments.sh --scale (see
# EXPERIMENTS.md, "Scaling beyond the paper").
echo "=== scale smoke (tbl_scale --smoke, 1024-node SC+PIL) ==="
target/release/tbl_scale --smoke --budget-secs 600

# SLO smoke: the coupled datapath must flow a million open-loop users
# through the c3831 128-node Real and Colo cells, produce schema-valid
# bench_slo/v2 rows, show the Colo tail *diverging* from Real (the
# user-visible C3831 signal the coupling exists for), and reproduce
# its request-log digest byte-for-byte on a rerun — all inside the
# wall budget. Full triples and verdicts come from
# scripts/run_experiments.sh --slo (see EXPERIMENTS.md, "Client
# traffic & SLOs").
echo "=== slo smoke (tbl_slo --smoke, c3831@128 Real vs Colo, 1M users) ==="
target/release/tbl_slo --smoke --budget-secs 240

echo "=== traffic datapath suites (arrivals, consistency, SLO, runner differential) ==="
cargo test -q -p scalecheck-traffic
cargo test -q --test traffic_slo

# The paper-shape SLO regression needs three 128-node runs (Real,
# Colo, and the full SC+PIL pipeline); too slow under the dev profile,
# so it is #[ignore]d there and run here against the release build.
echo "=== paper-shape SLO regression (c3831@128 triple, release) ==="
cargo test --release -q --test traffic_slo -- --ignored

# Schedule exploration: the tie-order plumbing must stay inert on the
# identity path (pinned smoke cells, zero verdict flips), and the
# committed witness — a single targeted swap that flips the race
# preset's verdict — must replay bit-identically from scratch.
echo "=== schedule-explorer smoke (explore_run --smoke) ==="
target/release/explore_run --smoke --budget-secs 120

echo "=== committed schedule witness replay ==="
target/release/explore_run --replay tests/witnesses/race_40_1_real.json

echo "=== schedule-exploration suites (tie order, frontier, shrinker, witness) ==="
cargo test -q -p scalecheck-explore
cargo test -q -p scalecheck-cluster --test schedule

echo "=== optimized-vs-naive differential properties ==="
cargo test -q --test proptests phi_running_sum_matches_naive_resum
cargo test -q --test proptests token_map_cache_is_transparent
cargo test -q --test proptests link_fifo_clocks_match_a_sparse_model

echo "ci green"
