#!/usr/bin/env bash
# The full local CI gate: format, lint, build, test.
# Usage: scripts/ci.sh
#
# Note: the repo root is both a [workspace] and a [package], so plain
# `cargo test` covers only the root crate; the --workspace forms below
# cover every member. Both must stay green.
set -eu
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (workspace, -D warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release (workspace) ==="
cargo build --release --workspace

echo "=== cargo test (root package) ==="
cargo test -q

echo "=== cargo test (workspace) ==="
cargo test --workspace -q

# The fault/regression suites gate the determinism and paper-shape
# contracts; run them by name so a failure is attributable at a glance
# even though the broad passes above include them.
echo "=== scenario regressions (paper shapes at pinned seeds) ==="
cargo test -q --test bug_regressions

echo "=== fault injection + determinism ==="
cargo test -q --test failure_injection

echo "=== property suites (incl. fault-layer invariants) ==="
cargo test -q --test proptests

echo "=== sweep cache keyed on fault plans ==="
cargo test -q -p scalecheck-bench --test sweep_integration

# Perf smoke: the engine microbenchmark must run, emit well-formed
# bench_engine/v1 JSON with nonzero throughput on every scenario, and
# the wheel/heap differential property suites must hold. The smoke
# sizes keep this under a minute; trajectory numbers come from the
# full run in scripts/run_experiments.sh (see EXPERIMENTS.md).
echo "=== engine perf smoke (bench_engine --smoke) ==="
target/release/bench_engine --smoke --out target/BENCH_engine_smoke.json
target/release/bench_engine --verify target/BENCH_engine_smoke.json

echo "=== wheel/heap differential properties ==="
cargo test -q --test proptests wheel_and_heap_schedulers_are_indistinguishable
cargo test -q --test proptests steady_state_periodic_timers_run_allocation_free

echo "ci green"
