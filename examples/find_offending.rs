//! The program-analysis side of scale check (Figure 2, steps a–c):
//! annotate the scale-dependent data structures, run the finder, and
//! read off which functions may take the PIL.
//!
//! Builds a small protocol in the finder's IR by hand — the same steps
//! a developer would take on their own system — and then runs the
//! shipped model of this repository's cluster substrate for comparison.
//!
//! ```text
//! cargo run --example find_offending
//! ```

use scalecheck_pilfinder::{
    analyze, cluster_protocol_model, instrument, Degree, FinderConfig, Program, Stmt,
};

fn main() {
    println!("== Step a: annotate scale-dependent data structures ==\n");

    // A developer models their protocol: a membership list that grows
    // with the cluster (@scaledep) and a fixed config list.
    let mut program = Program::new();
    program
        .collection("members", true, Degree::new(1, 0, 0, 0))
        .collection("config", false, Degree::CONST);

    // An innocuous-looking handler with a quadratic nest, where the
    // expensive path only runs during elections.
    program.function(
        "recompute_quorum",
        120,
        vec![Stmt::Branch {
            condition: "election_in_progress".into(),
            then_body: vec![Stmt::Loop {
                over: "members".into(),
                body: vec![Stmt::Loop {
                    over: "members".into(),
                    body: vec![Stmt::Compute],
                }],
            }],
            else_body: vec![Stmt::Loop {
                over: "config".into(),
                body: vec![Stmt::Compute],
            }],
        }],
    );
    // A broadcast helper: also scale-dependent, but it sends messages,
    // so it may not take the PIL.
    program.function(
        "broadcast_view",
        60,
        vec![
            Stmt::Loop {
                over: "members".into(),
                body: vec![Stmt::Loop {
                    over: "members".into(),
                    body: vec![Stmt::Compute],
                }],
            },
            Stmt::SendMessage,
        ],
    );
    program.validate().expect("valid model");

    println!("== Step b: run the offending-function finder ==\n");
    let report = analyze(&program, FinderConfig::default());
    for name in &report.offending {
        let f = &report.functions[name];
        println!("offending: {name} {} (PIL-safe: {})", f.degree, f.pil_safe);
        for c in &f.contributions {
            if !c.conditions.is_empty() {
                println!("  reachable only under {:?}", c.conditions);
            }
        }
    }

    println!();
    println!("== Step c: the instrumentation plan ==\n");
    println!("instrument for PIL : {:?}", report.instrumentation_plan);
    println!("restructure first  : {:?}", report.unsafe_offenders);
    let instrumented = instrument(&program, &report).expect("instrumentable");
    println!(
        "auto-instrumented  : {} functions now carry record hooks",
        instrumented.functions.len() - program.functions.len()
    );

    println!();
    println!("== The same analysis over this repo's cluster substrate ==\n");
    let model = cluster_protocol_model();
    let report = analyze(&model, FinderConfig::default());
    for name in &report.offending {
        let f = &report.functions[name];
        let deepest = f
            .contributions
            .iter()
            .map(|c| c.chain.len())
            .max()
            .unwrap_or(0);
        println!(
            "offending: {:<32} {:<16} spans {} functions / {} LOC, PIL-safe: {}",
            f.name,
            f.degree.to_string(),
            deepest + 1,
            f.span_loc,
            f.pil_safe
        );
    }
    println!();
    println!(
        "the cubic nest spanning many functions and the bootstrap-only branch are \
         exactly the C6127 patterns the paper describes (S5)."
    );
}
