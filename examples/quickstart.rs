//! Quickstart: scale-check a cluster protocol on "one machine".
//!
//! Runs a small Cassandra-like cluster through a decommission under the
//! historical cubic pending-range calculator, three ways:
//!
//! 1. real-scale testing (every node on its own machine) — the ground
//!    truth;
//! 2. basic colocation — cheap but distorted by CPU contention;
//! 3. scale check (memoize once, then PIL-infused replay) — cheap *and*
//!    accurate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scalecheck::{memoize, replay, run_colo, run_real, COLO_CORES};
use scalecheck_cluster::ScenarioConfig;

fn main() {
    // The C3831 scenario at a modest scale so the example runs in
    // seconds. Push `n` to 256 to watch the bug appear.
    let n = 48;
    let cfg = ScenarioConfig::c3831(n, 42);

    println!("== ScaleCheck quickstart: C3831 decommission at N={n} ==\n");

    println!("[1/3] real-scale testing ({n} machines)...");
    let real = run_real(&cfg);
    println!(
        "      flaps={} duration={:.0}s quiesced={}",
        real.total_flaps,
        real.duration.as_secs_f64(),
        real.quiesced
    );

    println!("[2/3] basic colocation (1 machine, {COLO_CORES} cores)...");
    let colo = run_colo(&cfg, COLO_CORES);
    println!(
        "      flaps={} duration={:.0}s (contention stretches the run)",
        colo.total_flaps,
        colo.duration.as_secs_f64()
    );

    println!("[3/3] scale check: memoize once, then PIL-infused replay...");
    let memo = memoize(&cfg, COLO_CORES);
    println!(
        "      memoized {} records, {} ordered events, took {:.0}s (one-time)",
        memo.db.stats().recorded,
        memo.order.total(),
        memo.report.duration.as_secs_f64()
    );
    let pil = replay(&cfg, COLO_CORES, &memo);
    println!(
        "      replay flaps={} duration={:.0}s memo-hit-rate={:.1}%",
        pil.total_flaps,
        pil.duration.as_secs_f64(),
        pil.memo.replay_hit_rate() * 100.0
    );

    println!();
    println!("real-scale flaps : {}", real.total_flaps);
    println!("colocation flaps : {}", colo.total_flaps);
    println!(
        "SC+PIL flaps     : {}  <- should track real-scale",
        pil.total_flaps
    );
    println!();
    println!("next: try `--example reproduce_c3831` for the full Figure 3a sweep,");
    println!("or `--example find_offending` for the program-analysis side.");
}
