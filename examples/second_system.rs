//! Scale-checking a second system (the paper's §7 future work): an
//! HDFS-like namenode with a serialized-O(N) bug — the root-cause class
//! covering 53 % of the paper's bug study.
//!
//! The buggy master rescans its entire block map for every full block
//! report, holding the global namesystem lock; once one report's hold
//! exceeds the heartbeat timeout, live datanodes get declared dead in
//! waves. The fix diffs incrementally. SC+PIL reproduces the symptom
//! with report processing replaced by `sleep(recorded duration)`.
//!
//! ```text
//! cargo run --release --example second_system
//! ```

use scalecheck_hdfslike::{hdfs_scale_check, run_hdfs, HdfsConfig, ReportVersion};

fn main() {
    println!("== Scale-checking an HDFS-like system (serialized O(N) bug) ==\n");

    // Below the knee: one report's lock hold is under the heartbeat
    // timeout.
    let small = run_hdfs(&HdfsConfig::bug(128, 42));
    println!(
        "N=128 (buggy master): {} false dead declarations — healthy",
        small.false_dead
    );

    // Above the knee: the hold exceeds the timeout and the master
    // declares live datanodes dead, repeatedly.
    let big = run_hdfs(&HdfsConfig::bug(224, 42));
    println!(
        "N=224 (buggy master): {} false dead declarations, {} recoveries — flapping",
        big.false_dead, big.recoveries
    );

    // The historical-style fix.
    let mut fixed_cfg = HdfsConfig::bug(224, 42);
    fixed_cfg.version = ReportVersion::IncrementalDiff;
    let fixed = run_hdfs(&fixed_cfg);
    println!(
        "N=224 (incremental-diff fix): {} false dead declarations",
        fixed.false_dead
    );

    // Scale check: memoize the report durations once, then PIL-replay.
    println!("\nscale check at N=224 (memoize once, then PIL replay):");
    let (memoized, replayed) = hdfs_scale_check(&HdfsConfig::bug(224, 42), 16);
    println!(
        "  memoized {} report records; replay hit-rate {:.0}%",
        memoized.memo.recorded,
        replayed.memo.replay_hit_rate() * 100.0
    );
    println!(
        "  replay false-dead = {} (real = {}), output mismatches = {}",
        replayed.false_dead, big.false_dead, replayed.output_mismatches
    );
    println!();
    println!("the same PIL pipeline that reproduced the Cassandra bugs transfers");
    println!("to a different system and a different root-cause class (S7).");
}
