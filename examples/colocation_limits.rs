//! Explore the §6/§8 colocation bottlenecks interactively: how many
//! nodes fit on one machine before CPU, memory, or event lateness gives
//! out — and how the §6 "scale-checkable redesign" (single process,
//! frugal allocation) moves the limit.
//!
//! ```text
//! cargo run --release --example colocation_limits
//! cargo run --release --example colocation_limits -- --factors 64,128,192
//! ```

use scalecheck::{
    colocation_memory_demand, diagnose, memoize, replay, Bottleneck, BottleneckThresholds,
    COLO_CORES,
};
use scalecheck_cluster::{ScenarioConfig, Workload};
use scalecheck_sim::SimDuration;

fn scenario(n: usize, single_process: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(n, 7);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.rescale_window = SimDuration::from_secs(30);
    cfg.workload_end = SimDuration::from_secs(110);
    cfg.max_duration = SimDuration::from_secs(900);
    cfg.memory.single_process = single_process;
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let factors: Vec<usize> = args
        .iter()
        .position(|a| a == "--factors")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().parse().unwrap()).collect())
        .unwrap_or_else(|| vec![96, 192, 320]);

    println!("== Colocation limits on a 16-core / 32-GB machine model ==\n");
    println!("static memory demand first (no run needed):");
    for &n in &factors {
        let per_process = colocation_memory_demand(&scenario(n, false), n);
        let single = colocation_memory_demand(&scenario(n, true), n);
        println!(
            "  N={n:>4}: per-process {:>6.1} GB, single-process {:>6.2} GB",
            per_process as f64 / (1u64 << 30) as f64,
            single as f64 / (1u64 << 30) as f64,
        );
    }

    println!();
    println!("now live runs (single-process, PIL replay — the scale-checkable setup):");
    let thresholds = BottleneckThresholds::default();
    for &n in &factors {
        let cfg = scenario(n, true);
        eprint!("  N={n:>4}: memoize+replay...");
        let memo = memoize(&cfg, COLO_CORES);
        let r = replay(&cfg, COLO_CORES, &memo);
        eprintln!(" done");
        let hits = diagnose(&r, &thresholds);
        let verdict = if hits.is_empty() {
            "clean".to_string()
        } else {
            hits.iter()
                .map(|b| match b {
                    Bottleneck::CpuContention => "cpu>90%",
                    Bottleneck::MemoryExhaustion => "out-of-memory",
                    Bottleneck::EventLateness => "event-lateness",
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  N={n:>4}: cpu={:.0}% mem={:.1}GB p99-lateness={} -> {verdict}",
            r.cpu_utilization * 100.0,
            r.mem_peak_bytes as f64 / (1u64 << 30) as f64,
            r.p99_stage_lateness,
        );
    }
    println!();
    println!("the full §8 sweep (to 600 nodes) is `cargo run --release -p scalecheck-bench --bin tbl_colocation_limit`.");
}
