//! Reproduce bug CASSANDRA-3831 across scales (the paper's Figure 3a).
//!
//! Decommissioning nodes triggers the cubic pending-range calculation
//! inline on the gossip stage; at 200+ nodes the calculation starves
//! heartbeat processing and the cluster flaps. This example sweeps the
//! cluster size and shows (a) the symptom only surfaces at large N and
//! (b) SC+PIL reproduces it on "one machine" where basic colocation
//! wildly overshoots.
//!
//! ```text
//! cargo run --release --example reproduce_c3831            # fast demo sweep
//! cargo run --release --example reproduce_c3831 -- --full  # the paper's 32..256
//! ```

use scalecheck::{compare_sweeps, memoize, replay, run_colo, run_real, FlapSweep, COLO_CORES};
use scalecheck_cluster::ScenarioConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scales: Vec<usize> = if full {
        vec![32, 64, 128, 256]
    } else {
        vec![32, 64, 96]
    };
    println!("== Reproducing CASSANDRA-3831 (decommission flapping) ==");
    println!("scales: {scales:?} (use --full for the paper's 32..256)\n");

    let mut real_flaps = Vec::new();
    let mut colo_flaps = Vec::new();
    let mut pil_flaps = Vec::new();
    for &n in &scales {
        let cfg = ScenarioConfig::c3831(n, 1);
        eprint!("N={n:>4}: real...");
        let real = run_real(&cfg);
        eprint!(" colo...");
        let colo = run_colo(&cfg, COLO_CORES);
        eprint!(" sc+pil...");
        let memo = memoize(&cfg, COLO_CORES);
        let pil = replay(&cfg, COLO_CORES, &memo);
        eprintln!(" done");
        println!(
            "N={n:>4}: real={:>8} colo={:>8} sc+pil={:>8}",
            real.total_flaps, colo.total_flaps, pil.total_flaps
        );
        real_flaps.push(real.total_flaps);
        colo_flaps.push(colo.total_flaps);
        pil_flaps.push(pil.total_flaps);
    }

    let real = FlapSweep::new(scales.clone(), real_flaps);
    let colo = FlapSweep::new(scales.clone(), colo_flaps);
    let pil = FlapSweep::new(scales.clone(), pil_flaps);
    let onset_threshold = 500;

    println!();
    match real.onset(onset_threshold) {
        Some(n) => println!("symptom onset in real-scale testing: N={n}"),
        None => println!(
            "no symptom below N={} — exactly the paper's point: small-scale \
             testing is not enough (run with --full)",
            scales.last().unwrap()
        ),
    }
    let pil_cmp = compare_sweeps(&real, &pil, onset_threshold);
    let colo_cmp = compare_sweeps(&real, &colo, onset_threshold);
    println!(
        "SC+PIL vs real: mean error {:.2}, same onset: {}",
        pil_cmp.mean_error, pil_cmp.same_onset
    );
    println!(
        "Colo   vs real: mean error {:.2}, same onset: {}",
        colo_cmp.mean_error, colo_cmp.same_onset
    );
}
