//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of proptest this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`Strategy`] with integer-range, tuple, `any::<T>()`, and
//!   `prop::collection::vec` strategies;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test's name), so failures reproduce across runs. There is no
//! shrinking: a failing case panics with the case/attempt number and the
//! failed assertion.

use std::ops::Range;

/// A deterministic splitmix64 RNG for case generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from raw state.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------
// Integer ranges.
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a default "anything goes" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, broad magnitude spread.
        let mantissa = rng.next_u64() as f64 / u64::MAX as f64;
        let exp = (rng.below(41) as i32 - 20) as f64;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mantissa * 10f64.powf(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.below(0xD7FF) + 1) as u32).unwrap_or('a')
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds a strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ---------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------

/// A length range for collection strategies.
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A strategy for `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Config, errors, macros.
// ---------------------------------------------------------------------

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

/// The proptest prelude: everything the `proptest!` tests need.
pub mod prelude {
    /// The `prop` namespace (`prop::collection::vec`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                ::std::format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assert_eq failed: {:?} != {:?} ({})",
                __l,
                __r,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assert_ne failed: both sides equal: {:?}",
                __l
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` accepted generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cfg.cases.saturating_mul(20).max(200);
                while __accepted < __cfg.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    let __outcome = (|__rng: &mut $crate::TestRng|
                        -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })(&mut __rng);
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            ::std::panic!(
                                "proptest '{}' failed on attempt {} (after {} passing cases):\n{}",
                                stringify!($name),
                                __attempts,
                                __accepted,
                                __msg
                            );
                        }
                    }
                }
                ::std::assert!(
                    __accepted >= __cfg.cases,
                    "proptest '{}' rejected too many cases ({} accepted of {} wanted)",
                    stringify!($name),
                    __accepted,
                    __cfg.cases
                );
            }
        )*
    };
}
