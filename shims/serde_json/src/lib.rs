//! Offline stand-in for `serde_json`, backed by the `serde` shim's
//! [`Value`] document model. Provides the subset this workspace uses:
//! [`to_string`], [`from_str`], [`Value`], [`Error`], and the [`json!`]
//! macro.

pub use serde::json::{Error, Num, Value};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_string())
}

/// Serializes a value to a pretty-printed JSON string (two-space
/// indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.serialize(), 0))
}

fn pretty(v: &Value, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            let inner: Vec<String> = items
                .iter()
                .map(|i| format!("{pad_in}{}", pretty(i, indent + 1)))
                .collect();
            format!("[\n{}\n{pad}]", inner.join(",\n"))
        }
        Value::Object(entries) if !entries.is_empty() => {
            let inner: Vec<String> = entries
                .iter()
                .map(|(k, v)| {
                    format!(
                        "{pad_in}{}: {}",
                        Value::Str(k.clone()),
                        pretty(v, indent + 1)
                    )
                })
                .collect();
            format!("{{\n{}\n{pad}}}", inner.join(",\n"))
        }
        other => other.to_string(),
    }
}

/// Parses a JSON string into a value of type `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::deserialize(&v)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Reconstructs a `T` from a [`Value`].
pub fn from_value<T: serde::de::DeserializeOwned>(v: Value) -> Result<T, Error> {
    T::deserialize(&v)
}

/// Builds a [`Value`] from JSON-like syntax, serde_json style.
///
/// Values are arbitrary serializable expressions; nest `json!` calls
/// explicitly for inner objects/arrays.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val).expect("json! value")) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![
            $( $crate::to_value(&$item).expect("json! value") ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value")
    };
}
