//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the derive input with a small
//! hand-rolled token walker and emits impl code as a string. It covers
//! the shapes this workspace uses: structs with named fields, tuple
//! structs (newtype and wider), unit structs, and enums whose variants
//! are unit, tuple, or struct-like — all optionally generic over type
//! parameters (each type parameter gets the respective trait bound).
//!
//! Wire conventions match serde_json's defaults (see the `serde` shim's
//! crate docs).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_serialize(&item))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_deserialize(&item))
}

fn emit(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde shim derive produced invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------------
// A minimal model of the derive input.
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// Raw generic parameter declarations, e.g. `["T: Clone", "'a"]`.
    params: Vec<Param>,
    shape: Shape,
}

struct Param {
    /// The bare name used in the `for Name<...>` position (`T`, `'a`).
    name: String,
    /// The declaration with any inline bounds (`T: Clone`).
    decl: String,
    /// Whether this is a type parameter (gets the trait bound).
    is_type: bool,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------
// Token walking.
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skips outer attributes (`#[...]`) and doc comments.
    fn skip_attrs(&mut self) {
        while self.at_punct('#') {
            self.next();
            // Optional `!` for inner attributes (not expected, but safe).
            if self.at_punct('!') {
                self.next();
            }
            self.next(); // the [...] group
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();

    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };

    let params = if c.at_punct('<') {
        parse_generics(&mut c)
    } else {
        Vec::new()
    };

    // Skip a `where` clause if present (none expected in this workspace).
    if c.at_ident("where") {
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace) {
                break;
            }
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ';') {
                break;
            }
            c.next();
        }
    }

    let shape = match kind.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for '{other}'"),
    };

    Item {
        name,
        params,
        shape,
    }
}

/// Parses `<...>` generic parameters; the cursor sits on the `<`.
fn parse_generics(c: &mut Cursor) -> Vec<Param> {
    c.next(); // consume '<'
    let mut depth = 1usize;
    let mut segments: Vec<Vec<TokenTree>> = vec![Vec::new()];
    while depth > 0 {
        let t = c
            .next()
            .unwrap_or_else(|| panic!("serde shim derive: unterminated generics"));
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                segments.last_mut().unwrap().push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    segments.last_mut().unwrap().push(t);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                segments.push(Vec::new());
            }
            _ => segments.last_mut().unwrap().push(t),
        }
    }
    segments
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            // Strip a `= default` suffix if present.
            let mut decl_toks: Vec<TokenTree> = Vec::new();
            let mut d = 0usize;
            for t in &seg {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => d += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => d = d.saturating_sub(1),
                    TokenTree::Punct(p) if p.as_char() == '=' && d == 0 => break,
                    _ => {}
                }
                decl_toks.push(t.clone());
            }
            let decl = tokens_to_string(&decl_toks);
            match &seg[0] {
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    // Lifetime: name is `'ident`.
                    let id = match seg.get(1) {
                        Some(TokenTree::Ident(i)) => i.to_string(),
                        _ => panic!("serde shim derive: malformed lifetime parameter"),
                    };
                    Param {
                        name: format!("'{id}"),
                        decl,
                        is_type: false,
                    }
                }
                TokenTree::Ident(i) if i.to_string() == "const" => {
                    let id = match seg.get(1) {
                        Some(TokenTree::Ident(i)) => i.to_string(),
                        _ => panic!("serde shim derive: malformed const parameter"),
                    };
                    Param {
                        name: id,
                        decl,
                        is_type: false,
                    }
                }
                TokenTree::Ident(i) => Param {
                    name: i.to_string(),
                    decl,
                    is_type: true,
                },
                other => panic!("serde shim derive: unsupported generic parameter {other:?}"),
            }
        })
        .collect()
}

/// Parses `name: Type, ...` named fields, skipping attributes and
/// visibility; types are not needed (codegen relies on inference).
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        fields.push(name);
        // Expect ':' then the type, up to a top-level ','.
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':', got {other:?}"),
        }
        let mut depth = 0usize;
        loop {
            match c.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    c.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth = depth.saturating_sub(1);
                    c.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    c.next();
                    break;
                }
                _ => {
                    c.next();
                }
            }
        }
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0usize;
    let mut depth = 0usize;
    let mut saw_tokens = false;
    loop {
        // Skip per-field attributes/visibility at field starts.
        if depth == 0 && !saw_tokens {
            c.skip_attrs();
            c.skip_vis();
        }
        match c.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
                saw_tokens = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                if saw_tokens {
                    count += 1;
                }
                saw_tokens = false;
            }
            Some(_) => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        if c.at_punct('=') {
            while let Some(t) = c.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                let _ = t;
                c.next();
            }
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn tokens_to_string(toks: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.to_string());
    }
    s
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

/// `impl<...bounded params...> Trait for Name<...param names...>`.
fn impl_header(item: &Item, trait_path: &str) -> String {
    let mut header = String::from("impl");
    if !item.params.is_empty() {
        header.push('<');
        for (i, p) in item.params.iter().enumerate() {
            if i > 0 {
                header.push_str(", ");
            }
            header.push_str(&p.decl);
            if p.is_type {
                if p.decl.contains(':') {
                    header.push_str(&format!(" + {trait_path}"));
                } else {
                    header.push_str(&format!(": {trait_path}"));
                }
            }
        }
        header.push('>');
    }
    header.push_str(&format!(" {trait_path} for {}", item.name));
    if !item.params.is_empty() {
        header.push('<');
        for (i, p) in item.params.iter().enumerate() {
            if i > 0 {
                header.push_str(", ");
            }
            header.push_str(&p.name);
        }
        header.push('>');
    }
    header
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::json::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "::serde::json::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::Unit => "::serde::json::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let ty = &item.name;
                match &v.shape {
                    VariantShape::Unit => arms.push(format!(
                        "{ty}::{vn} => ::serde::json::Value::Str(::std::string::String::from(\"{vn}\"))"
                    )),
                    VariantShape::Tuple(1) => arms.push(format!(
                        "{ty}::{vn}(__f0) => ::serde::json::tagged(\"{vn}\", ::serde::Serialize::serialize(__f0))"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push(format!(
                            "{ty}::{vn}({}) => ::serde::json::tagged(\"{vn}\", ::serde::json::Value::Array(::std::vec![{}]))",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{ty}::{vn} {{ {binds} }} => ::serde::json::tagged(\"{vn}\", ::serde::json::Value::Object(::std::vec![{}]))",
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n    fn serialize(&self) -> ::serde::json::Value {{\n        {body}\n    }}\n}}\n",
        impl_header(item, "::serde::Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::json::field(__obj, \"{f}\")?"))
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::json::Error::expected(\"object for {name}\", __v))?;\n        ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::json::Error::expected(\"array for {name}\", __v))?;\n        if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::json::Error::msg(\"wrong tuple arity for {name}\")); }}\n        ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})"
                    )),
                    VariantShape::Tuple(1) => data_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__payload)?))"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ let __items = __payload.as_array().ok_or_else(|| ::serde::json::Error::expected(\"array for {name}::{vn}\", __payload))?; if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::json::Error::msg(\"wrong arity for {name}::{vn}\")); }} ::std::result::Result::Ok({name}::{vn}({})) }}",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::json::field(__fields, \"{f}\")?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ let __fields = __payload.as_object().ok_or_else(|| ::serde::json::Error::expected(\"object for {name}::{vn}\", __payload))?; ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            unit_arms.push(format!(
                "__other => ::std::result::Result::Err(::serde::json::Error::msg(::std::format!(\"unknown {name} variant '{{__other}}'\")))"
            ));
            data_arms.push(format!(
                "__other => ::std::result::Result::Err(::serde::json::Error::msg(::std::format!(\"unknown {name} variant '{{__other}}'\")))"
            ));
            format!(
                "match __v {{\n            ::serde::json::Value::Str(__s) => match __s.as_str() {{ {} }},\n            ::serde::json::Value::Object(__entries) if __entries.len() == 1 => {{\n                let (__tag, __payload) = &__entries[0];\n                match __tag.as_str() {{ {} }}\n            }}\n            __other => ::std::result::Result::Err(::serde::json::Error::expected(\"enum {name}\", __other)),\n        }}",
                unit_arms.join(", "),
                data_arms.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n    fn deserialize(__v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{\n        {body}\n    }}\n}}\n",
        impl_header(item, "::serde::Deserialize")
    )
}
