//! The JSON document model shared by the `serde` and `serde_json`
//! shims: [`Value`], a writer, and a recursive-descent parser.
//!
//! Integers are kept at full `u128`/`i128` precision (the memo database
//! digests 128-bit inputs); floats use Rust's shortest round-trip
//! `Display` form.

use std::fmt;

/// A JSON number. Integers and floats are kept apart so 64/128-bit
/// values round-trip exactly.
#[derive(Clone, Copy, Debug)]
pub enum Num {
    /// A non-negative integer.
    Pos(u128),
    /// A negative integer.
    Neg(i128),
    /// A floating-point number.
    Float(f64),
}

impl PartialEq for Num {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Num::Pos(a), Num::Pos(b)) => a == b,
            (Num::Neg(a), Num::Neg(b)) => a == b,
            (Num::Float(a), Num::Float(b)) => a == b,
            (Num::Pos(a), Num::Float(b)) | (Num::Float(b), Num::Pos(a)) => *a as f64 == *b,
            (Num::Neg(a), Num::Float(b)) | (Num::Float(b), Num::Neg(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

/// A JSON document. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered entry list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Num::Pos(p)) => Some(*p as f64),
            Value::Num(Num::Neg(n)) => Some(*n as f64),
            Value::Num(Num::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// The value as a u64, if a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Num::Pos(p)) => u64::try_from(*p).ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(Num::Pos(p)) => {
                out.push_str(&p.to_string());
            }
            Value::Num(Num::Neg(n)) => {
                out.push_str(&n.to_string());
            }
            Value::Num(Num::Float(f)) => {
                if f.is_finite() {
                    let s = f.to_string();
                    out.push_str(&s);
                    // Keep the float/integer distinction in the output so
                    // a round trip preserves the number's flavour.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// Builds a "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Fetches a required field from object entries and deserializes it.
pub fn field<T: crate::Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field '{key}'")))?;
    T::deserialize(v).map_err(|e| Error(format!("field '{key}': {e}")))
}

/// Wraps an enum variant payload as `{"Variant": payload}`.
pub fn tagged(tag: &str, payload: Value) -> Value {
    Value::Object(vec![(tag.to_string(), payload)])
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

/// Parses a JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected '{}' at offset {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character '{}' at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = self.hex4()?;
                        // Surrogate pairs.
                        if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid codepoint"))?,
                            );
                        }
                    }
                    other => {
                        return Err(Error::msg(format!("invalid escape '\\{}'", other as char)))
                    }
                },
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::msg("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::msg(format!("invalid number '{text}'")))?;
            Ok(Value::Num(Num::Float(f)))
        } else if let Some(mag) = text.strip_prefix('-') {
            // Negative integer: parse magnitude wide, negate as i128.
            let n: i128 = text.parse().map_err(|_| {
                let _ = mag;
                Error::msg(format!("integer '{text}' out of range"))
            })?;
            Ok(Value::Num(Num::Neg(n)))
        } else {
            let p: u128 = text
                .parse()
                .map_err(|_| Error::msg(format!("integer '{text}' out of range")))?;
            Ok(Value::Num(Num::Pos(p)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']', got '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(entries)),
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}', got '{}'",
                        other as char
                    )))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
