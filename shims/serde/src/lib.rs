//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no network access and
//! no crates.io mirror, so the real `serde` cannot be fetched. This shim
//! provides the subset the workspace uses — `Serialize`, `Deserialize`,
//! `de::DeserializeOwned`, and the two derive macros — over a simple
//! JSON document model ([`json::Value`]). The companion `serde_json`
//! shim builds its `to_string`/`from_str`/`json!` API on top of it.
//!
//! The wire format follows serde_json's conventions so existing
//! fixtures and round-trip tests keep their meaning:
//!
//! * structs serialize as objects, newtype structs as their inner value,
//!   tuple structs as arrays;
//! * unit enum variants serialize as `"Variant"`, data variants as
//!   `{"Variant": payload}`;
//! * map keys serialize through their JSON form (quoted when needed);
//! * integers keep full `u128`/`i128` precision (memo digests are
//!   `u128` and must round-trip exactly).

pub mod json;

pub use json::{Error, Value};

/// Serialization into the shim's JSON document model.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn serialize(&self) -> Value;
}

/// Deserialization from the shim's JSON document model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` namespace: owned deserialization.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    /// In this shim every [`crate::Deserialize`] qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(json::Num::Pos(*self as u128))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(json::Num::Pos(p)) => <$t>::try_from(*p)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Num(json::Num::Neg(_)) => {
                        Err(Error::msg(concat!("negative value for ", stringify!($t))))
                    }
                    Value::Num(json::Num::Float(f)) if f.fract() == 0.0 && *f >= 0.0 => {
                        Ok(*f as $t)
                    }
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i128;
                if v < 0 {
                    Value::Num(json::Num::Neg(v))
                } else {
                    Value::Num(json::Num::Pos(v as u128))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(json::Num::Pos(p)) => <$t>::try_from(*p)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Num(json::Num::Neg(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Num(json::Num::Float(f)) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if self.is_finite() {
                    Value::Num(json::Num::Float(*self as f64))
                } else {
                    // serde_json maps non-finite floats to null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(json::Num::Float(f)) => Ok(*f as $t),
                    Value::Num(json::Num::Pos(p)) => Ok(*p as $t),
                    Value::Num(json::Num::Neg(n)) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
// `&'static str` struct fields: deserialization must allocate for the
// full program lifetime; acceptable for this shim's test-only use.
impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("char", other)),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize(_v: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(std::sync::Arc::new(T::deserialize(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(std::rc::Rc::new(T::deserialize(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------
// Maps: keys go through their JSON form (quoted when not a string).
// ---------------------------------------------------------------------

fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize() {
        Value::Str(s) => s,
        other => other.to_string(),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    let parsed = json::parse(key)?;
    K::deserialize(&parsed)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.serialize()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.serialize()))
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize).collect();
        items.sort_by_key(|v| v.to_string());
        Value::Array(items)
    }
}
impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
