//! Offline stand-in for `criterion`.
//!
//! Provides just enough API surface for this workspace's benches to
//! compile and run: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], `criterion_group!`, and `criterion_main!`.
//!
//! Each benchmark runs a short fixed number of timed iterations and
//! prints mean time per iteration. There is no statistical analysis,
//! HTML report, or CLI argument handling.

use std::fmt;
use std::time::Instant;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 10;

/// Runs the closure under timing.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = MEASURE_ITERS;
    }
}

/// A parameterized benchmark name.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

fn run_one(label: &str, run: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    run(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed_ns / b.iters as u128;
        println!("bench {label:<48} {per_iter:>12} ns/iter");
    } else {
        println!("bench {label:<48} (no iterations)");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Runs a benchmark without inputs.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
