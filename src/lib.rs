//! Workspace root crate: re-exports the public surface of the ScaleCheck
//! reproduction so examples and integration tests have one import point.

#![forbid(unsafe_code)]

pub use scalecheck;
pub use scalecheck_bugstudy as bugstudy;
pub use scalecheck_cluster as cluster;
pub use scalecheck_gossip as gossip;
pub use scalecheck_hdfslike as hdfslike;
pub use scalecheck_memo as memo;
pub use scalecheck_net as net;
pub use scalecheck_pilfinder as pilfinder;
pub use scalecheck_ring as ring;
pub use scalecheck_sim as sim;
