//! `scalecheck` — the command-line face of the reproduction.
//!
//! ```text
//! scalecheck-cli run        --bug c3831 --nodes 64 --mode real|colo|pil
//! scalecheck-cli memoize    --bug c3831 --nodes 64 --db memo.json
//! scalecheck-cli replay     --bug c3831 --nodes 64 --db memo.json
//! scalecheck-cli finder
//! scalecheck-cli bugstudy
//! scalecheck-cli statespace --nodes 256 --vnodes 256
//! ```
//!
//! The figure/table regeneration binaries live in `scalecheck-bench`;
//! this tool is the day-to-day interface: run one scenario, persist a
//! memoization database, replay against it, or query the analyses.

use std::path::Path;
use std::process::ExitCode;

use scalecheck::{memoize, replay, run_colo, run_real, COLO_CORES};
use scalecheck_cluster::{PendingWire, RunReport, ScenarioConfig};
use scalecheck_memo::MemoDb;
use scalecheck_pilfinder::{analyze, cluster_protocol_model, FinderConfig};

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn scenario(args: &[String]) -> ScenarioConfig {
    let bug = flag(args, "--bug").unwrap_or_else(|| "c3831".into());
    let nodes: usize = flag(args, "--nodes")
        .map(|s| s.parse().expect("--nodes must be an integer"))
        .unwrap_or(64);
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().expect("--seed must be an integer"))
        .unwrap_or(1);
    match bug.as_str() {
        "c3831" => ScenarioConfig::c3831(nodes, seed),
        "c3881" => ScenarioConfig::c3881(nodes, seed),
        "c5456" => ScenarioConfig::c5456(nodes, seed),
        "c6127" => ScenarioConfig::c6127(nodes, seed),
        other => {
            eprintln!("unknown bug '{other}' (c3831|c3881|c5456|c6127)");
            std::process::exit(2);
        }
    }
}

fn print_report(label: &str, r: &RunReport) {
    println!("{label}:");
    println!("  flaps           : {}", r.total_flaps);
    println!(
        "  duration        : {:.0}s (quiesced: {})",
        r.duration.as_secs_f64(),
        r.quiesced
    );
    println!(
        "  messages        : {} sent, {} delivered, {} dropped",
        r.messages_sent, r.messages_delivered, r.messages_dropped
    );
    println!(
        "  calculations    : {} ({} executed, max {:.2}s)",
        r.calc.invocations,
        r.calc.executed,
        r.calc.max_compute.as_secs_f64()
    );
    println!(
        "  memo            : hit-rate {:.1}% ({} hits / {} idx / {} miss)",
        r.memo.replay_hit_rate() * 100.0,
        r.memo.hits,
        r.memo.index_fallbacks,
        r.memo.misses
    );
    println!(
        "  availability    : {:.2}% of {} client ops failed",
        r.unavailability() * 100.0,
        r.client_ops_attempted
    );
    println!(
        "  cpu/lateness    : {:.0}% peak util, p99 stage lateness {}",
        r.cpu_utilization * 100.0,
        r.p99_stage_lateness
    );
}

fn cmd_run(args: &[String]) -> ExitCode {
    let cfg = scenario(args);
    let mode = flag(args, "--mode").unwrap_or_else(|| "real".into());
    let report = match mode.as_str() {
        "real" => run_real(&cfg),
        "colo" => run_colo(&cfg, COLO_CORES),
        "pil" => {
            let memo = memoize(&cfg, COLO_CORES);
            replay(&cfg, COLO_CORES, &memo)
        }
        other => {
            eprintln!("unknown mode '{other}' (real|colo|pil)");
            return ExitCode::from(2);
        }
    };
    print_report(&format!("{mode} run"), &report);
    ExitCode::SUCCESS
}

fn cmd_memoize(args: &[String]) -> ExitCode {
    let cfg = scenario(args);
    let db_path = flag(args, "--db").unwrap_or_else(|| "memo.json".into());
    let memo = memoize(&cfg, COLO_CORES);
    print_report("memoization (colo) run", &memo.report);
    match memo.db.save(Path::new(&db_path)) {
        Ok(()) => {
            println!("  database        : {} records -> {db_path}", memo.db.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to save database: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let cfg = scenario(args);
    let db_path = flag(args, "--db").unwrap_or_else(|| "memo.json".into());
    let db: MemoDb<PendingWire> = match MemoDb::load(Path::new(&db_path)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to load database '{db_path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rcfg = cfg
        .with_deployment(scalecheck_cluster::DeploymentMode::PilReplay { cores: COLO_CORES })
        .with_calc_io(scalecheck_cluster::CalcIo::Replay);
    rcfg.order_enforcement = false;
    let (report, _, _) = scalecheck_cluster::run_scenario_with_db(&rcfg, Some(db), None);
    print_report("PIL replay", &report);
    ExitCode::SUCCESS
}

fn cmd_finder() -> ExitCode {
    let report = analyze(&cluster_protocol_model(), FinderConfig::default());
    println!("offending functions (most expensive first):");
    for name in &report.offending {
        let f = &report.functions[name];
        println!(
            "  {:<32} {:<14} PIL-safe: {}",
            f.name,
            f.degree.to_string(),
            f.pil_safe
        );
    }
    println!("instrumentation plan: {:?}", report.instrumentation_plan);
    ExitCode::SUCCESS
}

fn cmd_bugstudy() -> ExitCode {
    let s = scalecheck_bugstudy::stats(&scalecheck_bugstudy::bugs());
    println!("{} bugs studied", s.total);
    for (sys, n) in &s.per_system {
        println!("  {sys:<12} {n}");
    }
    println!(
        "root causes: {:.0}% CPU-intensive, {:.0}% serialized O(N)",
        s.cpu_fraction * 100.0,
        s.serialized_fraction * 100.0
    );
    println!(
        "fix time: mean {:.0} days, max {} days",
        s.mean_days_to_fix, s.max_days_to_fix
    );
    ExitCode::SUCCESS
}

fn cmd_statespace(args: &[String]) -> ExitCode {
    let n: u64 = flag(args, "--nodes")
        .map(|s| s.parse().unwrap())
        .unwrap_or(256);
    let p: u64 = flag(args, "--vnodes")
        .map(|s| s.parse().unwrap())
        .unwrap_or(256);
    println!(
        "ordering space at N={n}, P={p}: ~10^{:.0} possibilities ({} digits)",
        scalecheck_memo::log10_ordering_space(n, p),
        scalecheck_memo::ordering_space_digits(n, p)
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: scalecheck-cli <run|memoize|replay|finder|bugstudy|statespace> \
         [--bug c3831|c3881|c5456|c6127] [--nodes N] [--seed S] [--mode real|colo|pil] \
         [--db memo.json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("memoize") => cmd_memoize(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("finder") => cmd_finder(),
        Some("bugstudy") => cmd_bugstudy(),
        Some("statespace") => cmd_statespace(&args[1..]),
        _ => usage(),
    }
}
